//! Driving front-end implementations (`{F₁ … Fₙ; R}`, the paper's §2.4) to
//! produce concurrent histories.
//!
//! An [`ImplAutomaton`] implements a
//! high-level object from a representation object. This module interleaves
//! the front-ends' low-level steps under explicit schedules and records the
//! high-level invocation/response [`History`], which can then be fed to
//! [`waitfree_model::linearize`] — exactly how the paper defines
//! implementation correctness (a concurrent system is correct iff its
//! histories are linearizable).
//!
//! [`ImplAutomaton`]: waitfree_model::ImplAutomaton

use std::collections::HashSet;

use waitfree_faults::rng::DetRng;
use waitfree_model::{BranchingSpec, History, ImplAction, ImplAutomaton, ObjectSpec, Pid};

/// The phase of one front-end within a run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Phase<S> {
    /// Waiting for workload item `usize`, carrying the front-end's
    /// persistent state (front-ends may keep data between operations —
    /// Figure 4-5's `winner` variable, for instance — threaded through
    /// [`ImplAutomaton::finish`]).
    Idle(usize, S),
    /// Serving workload item `usize` with this front-end state.
    Busy(usize, S),
}

/// Outcome of driving an implementation through a schedule.
#[derive(Clone, Debug)]
pub struct ImplRun<O, HiOp, HiResp> {
    /// The recorded high-level history.
    pub history: History<HiOp, HiResp>,
    /// The representation object's final state.
    pub final_object: O,
    /// Low-level operations executed per process — the "number of steps"
    /// whose boundedness defines (strong) wait-freedom.
    pub lo_steps: Vec<usize>,
    /// Whether every workload operation completed.
    pub complete: bool,
}

/// Drive `automaton` over `rep`, with process `i` executing `workloads[i]`
/// in order, interleaved according to `schedule` (each entry is a pid that
/// takes one micro-step). Entries for finished processes are skipped.
///
/// # Panics
///
/// Panics if a schedule entry names a pid with no workload slot.
pub fn run_schedule<O, A>(
    automaton: &A,
    rep: O,
    workloads: &[Vec<A::HiOp>],
    schedule: &[usize],
) -> ImplRun<O, A::HiOp, A::HiResp>
where
    O: ObjectSpec,
    A: ImplAutomaton<LoOp = O::Op, LoResp = O::Resp>,
{
    let n = workloads.len();
    let mut rep = rep;
    let mut history: History<A::HiOp, A::HiResp> = History::new();
    let mut phases: Vec<Phase<A::State>> =
        Pid::all(n).map(|p| Phase::Idle(0, automaton.idle(p))).collect();
    let mut lo_steps = vec![0usize; n];

    for &p in schedule {
        assert!(p < n, "schedule names pid {p} but there are {n} workloads");
        let pid = Pid(p);
        match &phases[p] {
            Phase::Idle(k, persisted) => {
                let k = *k;
                if k >= workloads[p].len() {
                    continue; // finished: skip
                }
                let op = &workloads[p][k];
                history.invoke(pid, op.clone());
                let st = automaton.begin(pid, persisted, op);
                phases[p] = Phase::Busy(k, st);
            }
            Phase::Busy(k, st) => {
                let k = *k;
                match automaton.action(pid, st) {
                    ImplAction::Invoke(lo) => {
                        let resp = rep.apply(pid, &lo);
                        lo_steps[p] += 1;
                        let st2 = automaton.observe(pid, st, &resp);
                        phases[p] = Phase::Busy(k, st2);
                    }
                    ImplAction::Return(hi) => {
                        history.respond(pid, hi).expect("well-formed by construction");
                        let persisted = automaton.finish(pid, st);
                        phases[p] = Phase::Idle(k + 1, persisted);
                    }
                }
            }
        }
    }

    let complete = phases
        .iter()
        .enumerate()
        .all(|(p, ph)| matches!(ph, Phase::Idle(k, _) if *k >= workloads[p].len()));
    ImplRun {
        history,
        final_object: rep,
        lo_steps,
        complete,
    }
}

/// Like [`run_schedule`], but with a uniformly random schedule (seeded for
/// reproducibility) that runs until every workload completes. The
/// representation may be nondeterministic ([`BranchingSpec`]); outcomes
/// are resolved uniformly at random. `max_steps` biases the contention
/// phase: after it elapses the scheduler keeps going (fairly, still
/// randomly) until everything completes or a generous hard bound trips.
///
/// # Panics
///
/// Panics if the run does not complete within the hard step bound — a
/// wait-freedom failure of the implementation under test.
pub fn run_random<O, A>(
    automaton: &A,
    rep: O,
    workloads: &[Vec<A::HiOp>],
    seed: u64,
    max_steps: usize,
) -> ImplRun<O, A::HiOp, A::HiResp>
where
    O: BranchingSpec,
    A: ImplAutomaton<LoOp = O::Op, LoResp = O::Resp>,
{
    let n = workloads.len();
    let mut rng = DetRng::new(seed);
    let mut rep = rep;
    let mut history: History<A::HiOp, A::HiResp> = History::new();
    let mut phases: Vec<Phase<A::State>> =
        Pid::all(n).map(|p| Phase::Idle(0, automaton.idle(p))).collect();
    let mut lo_steps = vec![0usize; n];

    let total_hi: usize = workloads.iter().map(Vec::len).sum();
    let hard_bound = max_steps + (total_hi * 256).max(4096);
    let unfinished = |phases: &[Phase<A::State>]| -> Vec<usize> {
        (0..n)
            .filter(|&p| !matches!(&phases[p], Phase::Idle(k, _) if *k >= workloads[p].len()))
            .collect()
    };

    for step in 0..hard_bound {
        let candidates = unfinished(&phases);
        if candidates.is_empty() {
            break;
        }
        let p = candidates[rng.below(candidates.len())];
        let pid = Pid(p);
        match &phases[p] {
            Phase::Idle(k, persisted) => {
                let op = &workloads[p][*k];
                history.invoke(pid, op.clone());
                let st = automaton.begin(pid, persisted, op);
                phases[p] = Phase::Busy(*k, st);
            }
            Phase::Busy(k, st) => match automaton.action(pid, st) {
                ImplAction::Invoke(lo) => {
                    let mut outcomes = rep.apply_all(pid, &lo);
                    let pick = rng.below(outcomes.len());
                    let (rep2, resp) = outcomes.swap_remove(pick);
                    rep = rep2;
                    lo_steps[p] += 1;
                    let st2 = automaton.observe(pid, st, &resp);
                    phases[p] = Phase::Busy(*k, st2);
                }
                ImplAction::Return(hi) => {
                    history.respond(pid, hi).expect("well-formed by construction");
                    let persisted = automaton.finish(pid, st);
                    phases[p] = Phase::Idle(*k + 1, persisted);
                }
            },
        }
        let _ = step;
    }

    let complete = unfinished(&phases).is_empty();
    assert!(complete, "implementation did not complete within {hard_bound} steps");
    ImplRun {
        history,
        final_object: rep,
        lo_steps,
        complete,
    }
}

/// Fault model for [`run_random_crashing`]: halt failures only, the
/// paper's model (§1) and the mirror of the exhaustive checker's
/// [`crate::check::CheckSettings::crashes`] branching — a crashed process
/// simply takes no further steps; it is never Byzantine.
#[derive(Clone, Debug)]
pub struct CrashSettings {
    /// RNG seed (schedule, branching outcomes, and crash draws).
    pub seed: u64,
    /// Per-step probability (‰) that the scheduled process crashes
    /// instead of stepping.
    pub crash_per_mille: u32,
    /// Cap on the number of processes allowed to crash in one run.
    pub max_crashes: usize,
    /// Contention-phase step budget, as in [`run_random`].
    pub max_steps: usize,
}

impl Default for CrashSettings {
    fn default() -> Self {
        CrashSettings { seed: 0, crash_per_mille: 25, max_crashes: 1, max_steps: 0 }
    }
}

/// A [`run_random`] result plus which processes were crashed.
#[derive(Clone, Debug)]
pub struct CrashingRun<O, HiOp, HiResp> {
    /// The run. `complete` here means every *surviving* process finished
    /// its workload; crashed processes may leave a pending (invoked,
    /// never responded) high-level operation in the history — linearize
    /// such histories with `PendingPolicy::MayTakeEffect`.
    pub run: ImplRun<O, HiOp, HiResp>,
    /// Pids crashed during the run, in crash order.
    pub crashed: Vec<usize>,
}

/// Like [`run_random`], but each scheduled step may instead permanently
/// halt the chosen process (with probability
/// [`CrashSettings::crash_per_mille`], at most
/// [`CrashSettings::max_crashes`] times). Survivors are driven until
/// their workloads complete: the run doubles as a wait-freedom check
/// under halt failures, since a front-end that waits on a crashed peer
/// never completes.
///
/// # Panics
///
/// Panics if the surviving processes do not complete within the hard
/// step bound — a wait-freedom failure of the implementation under test.
pub fn run_random_crashing<O, A>(
    automaton: &A,
    rep: O,
    workloads: &[Vec<A::HiOp>],
    settings: &CrashSettings,
) -> CrashingRun<O, A::HiOp, A::HiResp>
where
    O: BranchingSpec,
    A: ImplAutomaton<LoOp = O::Op, LoResp = O::Resp>,
{
    let n = workloads.len();
    let mut rng = DetRng::new(settings.seed);
    let mut rep = rep;
    let mut history: History<A::HiOp, A::HiResp> = History::new();
    let mut phases: Vec<Phase<A::State>> =
        Pid::all(n).map(|p| Phase::Idle(0, automaton.idle(p))).collect();
    let mut lo_steps = vec![0usize; n];
    let mut crashed: Vec<usize> = Vec::new();
    let mut halted = vec![false; n];

    let total_hi: usize = workloads.iter().map(Vec::len).sum();
    let hard_bound = settings.max_steps + (total_hi * 256).max(4096);
    let runnable = |phases: &[Phase<A::State>], halted: &[bool]| -> Vec<usize> {
        (0..n)
            .filter(|&p| {
                !halted[p]
                    && !matches!(&phases[p], Phase::Idle(k, _) if *k >= workloads[p].len())
            })
            .collect()
    };

    for _ in 0..hard_bound {
        let candidates = runnable(&phases, &halted);
        if candidates.is_empty() {
            break;
        }
        let p = candidates[rng.below(candidates.len())];
        if crashed.len() < settings.max_crashes && rng.per_mille(settings.crash_per_mille) {
            // Halt failure: p takes no further steps, ever. If it was
            // mid-operation the invocation stays pending in the history.
            halted[p] = true;
            crashed.push(p);
            continue;
        }
        let pid = Pid(p);
        match &phases[p] {
            Phase::Idle(k, persisted) => {
                let op = &workloads[p][*k];
                history.invoke(pid, op.clone());
                let st = automaton.begin(pid, persisted, op);
                phases[p] = Phase::Busy(*k, st);
            }
            Phase::Busy(k, st) => match automaton.action(pid, st) {
                ImplAction::Invoke(lo) => {
                    let mut outcomes = rep.apply_all(pid, &lo);
                    let pick = rng.below(outcomes.len());
                    let (rep2, resp) = outcomes.swap_remove(pick);
                    rep = rep2;
                    lo_steps[p] += 1;
                    let st2 = automaton.observe(pid, st, &resp);
                    phases[p] = Phase::Busy(*k, st2);
                }
                ImplAction::Return(hi) => {
                    history.respond(pid, hi).expect("well-formed by construction");
                    let persisted = automaton.finish(pid, st);
                    phases[p] = Phase::Idle(*k + 1, persisted);
                }
            },
        }
    }

    let complete = runnable(&phases, &halted).is_empty();
    assert!(
        complete,
        "survivors did not complete within {hard_bound} steps (crashed: {crashed:?})"
    );
    CrashingRun {
        run: ImplRun { history, final_object: rep, lo_steps, complete },
        crashed,
    }
}

/// Exhaustively enumerate the distinct complete histories the
/// implementation can produce for the given workloads, up to `max_runs`
/// explored schedules (depth-first). Suitable only for tiny workloads.
pub fn all_histories<O, A>(
    automaton: &A,
    rep: &O,
    workloads: &[Vec<A::HiOp>],
    max_runs: usize,
) -> Vec<History<A::HiOp, A::HiResp>>
where
    O: BranchingSpec,
    A: ImplAutomaton<LoOp = O::Op, LoResp = O::Resp>,
{
    let n = workloads.len();
    let mut seen: HashSet<History<A::HiOp, A::HiResp>> = HashSet::new();
    let mut runs = 0usize;

    // DFS over schedules, represented by the prefix so far.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn dfs<O, A>(
        automaton: &A,
        workloads: &[Vec<A::HiOp>],
        rep: O,
        phases: Vec<Phase<A::State>>,
        history: History<A::HiOp, A::HiResp>,
        seen: &mut HashSet<History<A::HiOp, A::HiResp>>,
        runs: &mut usize,
        max_runs: usize,
    ) where
        O: BranchingSpec,
        A: ImplAutomaton<LoOp = O::Op, LoResp = O::Resp>,
    {
        if *runs >= max_runs {
            return;
        }
        let n = workloads.len();
        let mut progressed = false;
        for p in 0..n {
            let pid = Pid(p);
            match &phases[p] {
                Phase::Idle(k, persisted) => {
                    if *k >= workloads[p].len() {
                        continue;
                    }
                    progressed = true;
                    let op = &workloads[p][*k];
                    let mut h2 = history.clone();
                    h2.invoke(pid, op.clone());
                    let st = automaton.begin(pid, persisted, op);
                    let mut ph2 = phases.clone();
                    ph2[p] = Phase::Busy(*k, st);
                    dfs(automaton, workloads, rep.clone(), ph2, h2, seen, runs, max_runs);
                }
                Phase::Busy(k, st) => {
                    progressed = true;
                    match automaton.action(pid, st) {
                        ImplAction::Invoke(lo) => {
                            for (rep2, resp) in rep.apply_all(pid, &lo) {
                                let st2 = automaton.observe(pid, st, &resp);
                                let mut ph2 = phases.clone();
                                ph2[p] = Phase::Busy(*k, st2);
                                dfs(
                                    automaton,
                                    workloads,
                                    rep2,
                                    ph2,
                                    history.clone(),
                                    seen,
                                    runs,
                                    max_runs,
                                );
                            }
                        }
                        ImplAction::Return(hi) => {
                            let mut h2 = history.clone();
                            h2.respond(pid, hi).expect("well-formed by construction");
                            let mut ph2 = phases.clone();
                            ph2[p] = Phase::Idle(*k + 1, automaton.finish(pid, st));
                            dfs(
                                automaton,
                                workloads,
                                rep.clone(),
                                ph2,
                                h2,
                                seen,
                                runs,
                                max_runs,
                            );
                        }
                    }
                }
            }
        }
        if !progressed {
            *runs += 1;
            seen.insert(history);
        }
    }

    dfs(
        automaton,
        workloads,
        rep.clone(),
        Pid::all(n).map(|p| Phase::Idle(0, automaton.idle(p))).collect(),
        History::new(),
        &mut seen,
        &mut runs,
        max_runs,
    );
    seen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_model::{linearize, PendingPolicy};
    use waitfree_objects::register::{BankOp, RegResp, RegisterBank, RegOp, RwRegister};

    /// A trivial "implementation": a high-level register implemented by a
    /// single low-level register, one lo-op per hi-op.
    struct PassThrough;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum FeState {
        Ready(RegOp),
        Responding(RegResp),
        Idle,
    }

    impl ImplAutomaton for PassThrough {
        type HiOp = RegOp;
        type HiResp = RegResp;
        type LoOp = BankOp;
        type LoResp = RegResp;
        type State = FeState;

        fn idle(&self, _pid: Pid) -> FeState {
            FeState::Idle
        }

        fn begin(&self, _pid: Pid, _st: &FeState, op: &RegOp) -> FeState {
            FeState::Ready(op.clone())
        }

        fn action(&self, _pid: Pid, st: &FeState) -> ImplAction<BankOp, RegResp> {
            match st {
                FeState::Ready(RegOp::Read) => ImplAction::Invoke(BankOp::Read(0)),
                FeState::Ready(RegOp::Write(v)) => ImplAction::Invoke(BankOp::Write(0, *v)),
                FeState::Responding(r) => ImplAction::Return(r.clone()),
                FeState::Idle => unreachable!("idle front-end has no action"),
            }
        }

        fn observe(&self, _pid: Pid, _st: &FeState, resp: &RegResp) -> FeState {
            FeState::Responding(resp.clone())
        }
    }

    #[test]
    fn schedule_runs_to_completion_and_linearizes() {
        let workloads = vec![vec![RegOp::Write(3)], vec![RegOp::Read]];
        // Round-robin schedule long enough to finish everything.
        let schedule: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let run = run_schedule(&PassThrough, RegisterBank::new(1, 0), &workloads, &schedule);
        assert!(run.complete);
        assert_eq!(run.lo_steps, vec![1, 1]);
        let report = linearize(&run.history, &RwRegister::new(0), PendingPolicy::MayTakeEffect);
        assert!(report.outcome.is_ok());
    }

    #[test]
    fn incomplete_schedule_reports_incomplete() {
        let workloads = vec![vec![RegOp::Write(3)]];
        let run = run_schedule(&PassThrough, RegisterBank::new(1, 0), &workloads, &[0]);
        assert!(!run.complete);
    }

    #[test]
    fn random_runs_complete() {
        let workloads = vec![
            vec![RegOp::Write(1), RegOp::Read],
            vec![RegOp::Write(2), RegOp::Read],
        ];
        for seed in 0..10 {
            let run = run_random(&PassThrough, RegisterBank::new(1, 0), &workloads, seed, 100);
            assert!(run.complete);
            let report =
                linearize(&run.history, &RwRegister::new(0), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn crashing_runs_leave_linearizable_histories_with_pending_ops() {
        let workloads = vec![
            vec![RegOp::Write(1), RegOp::Read],
            vec![RegOp::Write(2), RegOp::Read],
            vec![RegOp::Read, RegOp::Write(3)],
        ];
        let mut saw_crash = false;
        let mut saw_pending = false;
        for seed in 0..60 {
            let settings =
                CrashSettings { seed, crash_per_mille: 120, max_crashes: 2, max_steps: 100 };
            let out =
                run_random_crashing(&PassThrough, RegisterBank::new(1, 0), &workloads, &settings);
            assert!(out.run.complete, "survivors always complete");
            saw_crash |= !out.crashed.is_empty();
            saw_pending |= out.run.history.ops().iter().any(|op| op.resp.is_none());
            let report =
                linearize(&out.run.history, &RwRegister::new(0), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "seed {seed}: {:?}", out.run.history);
        }
        assert!(saw_crash, "the crash rate must actually bite across 60 seeds");
        assert!(saw_pending, "some crash must land mid-operation");
    }

    #[test]
    fn crashing_runner_is_deterministic_per_seed() {
        let workloads = vec![vec![RegOp::Write(1), RegOp::Read], vec![RegOp::Read]];
        let settings =
            CrashSettings { seed: 42, crash_per_mille: 200, max_crashes: 1, max_steps: 50 };
        let a = run_random_crashing(&PassThrough, RegisterBank::new(1, 0), &workloads, &settings);
        let b = run_random_crashing(&PassThrough, RegisterBank::new(1, 0), &workloads, &settings);
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(format!("{:?}", a.run.history), format!("{:?}", b.run.history));
    }

    #[test]
    fn zero_crash_rate_behaves_like_run_random() {
        let workloads = vec![vec![RegOp::Write(1), RegOp::Read], vec![RegOp::Read]];
        let settings =
            CrashSettings { seed: 7, crash_per_mille: 0, max_crashes: 3, max_steps: 50 };
        let out =
            run_random_crashing(&PassThrough, RegisterBank::new(1, 0), &workloads, &settings);
        assert!(out.crashed.is_empty());
        assert!(out.run.complete);
        assert!(out.run.history.ops().iter().all(|op| op.resp.is_some()));
    }

    #[test]
    fn exhaustive_histories_all_linearizable() {
        let workloads = vec![vec![RegOp::Write(1)], vec![RegOp::Read]];
        let histories = all_histories(&PassThrough, &RegisterBank::new(1, 0), &workloads, 10_000);
        assert!(!histories.is_empty());
        for h in &histories {
            let report = linearize(h, &RwRegister::new(0), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "{h:?}");
        }
    }

    #[test]
    fn exhaustive_histories_distinguish_orders() {
        // Write(1) || Read can yield Read(0) or Read(1) depending on the
        // interleaving — both histories must appear.
        let workloads = vec![vec![RegOp::Write(1)], vec![RegOp::Read]];
        let histories = all_histories(&PassThrough, &RegisterBank::new(1, 0), &workloads, 10_000);
        let mut read_values = std::collections::BTreeSet::new();
        for h in &histories {
            for op in h.ops() {
                if op.op == RegOp::Read {
                    if let Some(RegResp::Read(v)) = op.resp {
                        read_values.insert(v);
                    }
                }
            }
        }
        assert_eq!(read_values, std::collections::BTreeSet::from([0, 1]));
    }
}

/// Outcome of [`verify_implementation`].
#[derive(Clone, Debug)]
pub struct ImplVerification {
    /// Distinct complete histories explored exhaustively.
    pub exhaustive_histories: usize,
    /// Randomized runs executed on top of the exhaustive pass.
    pub random_runs: usize,
    /// The first non-linearizable history found, if any.
    pub counterexample: Option<String>,
}

impl ImplVerification {
    /// Whether every explored history linearized.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// One-call implementation check: drive `automaton` over `rep` with the
/// given workloads, exhaustively (bounded by `max_runs`) and then with
/// `random_runs` seeded random schedules, and verify every produced
/// history is linearizable against the sequential `spec` — the paper's
/// §2.4 correctness condition for implementations, packaged.
pub fn verify_implementation<O, A, S>(
    automaton: &A,
    rep: &O,
    spec: &S,
    workloads: &[Vec<A::HiOp>],
    max_runs: usize,
    random_runs: u64,
) -> ImplVerification
where
    O: BranchingSpec,
    A: ImplAutomaton<LoOp = O::Op, LoResp = O::Resp>,
    S: waitfree_model::ObjectSpec<Op = A::HiOp, Resp = A::HiResp>,
{
    use waitfree_model::{linearize, PendingPolicy};

    let mut verification = ImplVerification {
        exhaustive_histories: 0,
        random_runs: 0,
        counterexample: None,
    };
    for h in all_histories(automaton, rep, workloads, max_runs) {
        verification.exhaustive_histories += 1;
        if !linearize(&h, spec, PendingPolicy::MayTakeEffect).outcome.is_ok() {
            verification.counterexample = Some(format!("{h:?}"));
            return verification;
        }
    }
    let total_hi: usize = workloads.iter().map(Vec::len).sum();
    for seed in 0..random_runs {
        verification.random_runs += 1;
        let run = run_random(automaton, rep.clone(), workloads, seed, total_hi * 64);
        if !linearize(&run.history, spec, PendingPolicy::MayTakeEffect).outcome.is_ok() {
            verification.counterexample = Some(format!("seed {seed}: {:?}", run.history));
            return verification;
        }
    }
    verification
}

#[cfg(test)]
mod verify_tests {
    use super::*;
    use waitfree_objects::register::{BankOp, RegisterBank, RegOp, RegResp, RwRegister};

    /// Pass-through front-end (each hi-op is one lo-op).
    struct PassThrough;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Idle,
        Ready(RegOp),
        Responding(RegResp),
    }

    impl ImplAutomaton for PassThrough {
        type HiOp = RegOp;
        type HiResp = RegResp;
        type LoOp = BankOp;
        type LoResp = RegResp;
        type State = St;
        fn idle(&self, _pid: Pid) -> St {
            St::Idle
        }
        fn begin(&self, _pid: Pid, _st: &St, op: &RegOp) -> St {
            St::Ready(op.clone())
        }
        fn action(&self, _pid: Pid, st: &St) -> ImplAction<BankOp, RegResp> {
            match st {
                St::Idle => unreachable!(),
                St::Ready(RegOp::Read) => ImplAction::Invoke(BankOp::Read(0)),
                St::Ready(RegOp::Write(v)) => ImplAction::Invoke(BankOp::Write(0, *v)),
                St::Responding(r) => ImplAction::Return(r.clone()),
            }
        }
        fn observe(&self, _pid: Pid, _st: &St, resp: &RegResp) -> St {
            St::Responding(resp.clone())
        }
    }

    #[test]
    fn correct_implementation_verifies() {
        let v = verify_implementation(
            &PassThrough,
            &RegisterBank::new(1, 0),
            &RwRegister::new(0),
            &[vec![RegOp::Write(1), RegOp::Read], vec![RegOp::Read]],
            100_000,
            20,
        );
        assert!(v.is_ok(), "{v:?}");
        assert!(v.exhaustive_histories > 1);
        assert_eq!(v.random_runs, 20);
    }

    /// A broken front-end: reads return a constant instead of the
    /// register contents.
    struct LyingReader;

    impl ImplAutomaton for LyingReader {
        type HiOp = RegOp;
        type HiResp = RegResp;
        type LoOp = BankOp;
        type LoResp = RegResp;
        type State = St;
        fn idle(&self, _pid: Pid) -> St {
            St::Idle
        }
        fn begin(&self, _pid: Pid, _st: &St, op: &RegOp) -> St {
            St::Ready(op.clone())
        }
        fn action(&self, _pid: Pid, st: &St) -> ImplAction<BankOp, RegResp> {
            match st {
                St::Idle => unreachable!(),
                St::Ready(RegOp::Read) => ImplAction::Invoke(BankOp::Read(0)),
                St::Ready(RegOp::Write(v)) => ImplAction::Invoke(BankOp::Write(0, *v)),
                St::Responding(r) => ImplAction::Return(r.clone()),
            }
        }
        fn observe(&self, _pid: Pid, st: &St, resp: &RegResp) -> St {
            match (st, resp) {
                (St::Ready(RegOp::Read), _) => St::Responding(RegResp::Read(99)),
                (_, r) => St::Responding(r.clone()),
            }
        }
    }

    #[test]
    fn broken_implementation_is_caught_with_counterexample() {
        let v = verify_implementation(
            &LyingReader,
            &RegisterBank::new(1, 0),
            &RwRegister::new(0),
            &[vec![RegOp::Write(1)], vec![RegOp::Read]],
            100_000,
            0,
        );
        assert!(!v.is_ok());
        assert!(v.counterexample.unwrap().contains("99"));
    }
}
