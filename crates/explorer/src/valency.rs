//! Valency analysis — the combinatorial core of the paper's impossibility
//! proofs.
//!
//! A protocol configuration is *bivalent* if both decision values are still
//! reachable, and *univalent* (X-valent) otherwise (§3). The proofs of
//! Theorems 2, 6, 11 and 22 all follow the same plan: maneuver the protocol
//! into a *critical* configuration — a bivalent configuration whose every
//! successor is univalent — and then derive a contradiction by showing two
//! of those successors are indistinguishable to some process.
//!
//! This module computes the valency of every reachable configuration of a
//! concrete protocol, counts bivalent/univalent/critical configurations,
//! and reports, per critical configuration, the valence each process's
//! pending step forces — mechanizing the case analyses of the proofs.

use std::collections::{BTreeSet, HashMap};

use waitfree_model::{BranchingSpec, Pid, ProcessAutomaton, Val};

use crate::config::Config;

/// The set of decision values reachable from a configuration.
pub type Valence = BTreeSet<Val>;

/// A critical configuration: bivalent, with every successor univalent.
#[derive(Clone, Debug)]
pub struct CriticalConfig<O, S> {
    /// The configuration itself.
    pub config: Config<O, S>,
    /// For each running process, the union of valences of configurations
    /// reached if that process steps next (a singleton per successor,
    /// since successors of a critical configuration are univalent).
    pub outcome_by_pid: Vec<(Pid, Valence)>,
}

/// Full valency analysis of a protocol.
#[derive(Clone, Debug)]
pub struct ValencyReport<O, S> {
    /// Valence of the initial configuration.
    pub initial_valence: Valence,
    /// Number of reachable configurations.
    pub configs: usize,
    /// Number of bivalent (|valence| ≥ 2) configurations.
    pub bivalent: usize,
    /// Number of univalent configurations.
    pub univalent: usize,
    /// All critical configurations.
    pub critical: Vec<CriticalConfig<O, S>>,
    /// Number of maximal executions (schedules), saturating at `u128::MAX`.
    pub schedules: u128,
}

impl<O, S> ValencyReport<O, S> {
    /// Whether the initial configuration is bivalent — the starting point
    /// of every impossibility argument ("The initial protocol state is
    /// bivalent by assumption").
    #[must_use]
    pub fn initially_bivalent(&self) -> bool {
        self.initial_valence.len() >= 2
    }
}

/// Compute the valency structure of an `n`-process protocol over `object`.
///
/// Crash steps are excluded: the paper's valency arguments quantify over
/// schedules, with "the adversary stops scheduling P" expressed by simply
/// following only other processes' edges.
///
/// # Panics
///
/// Panics if the protocol is not wait-free (the configuration graph has a
/// cycle) — run [`crate::check::check_consensus`] first — or if it has
/// more than `max_configs` reachable configurations.
pub fn analyze<O, P>(
    protocol: &P,
    object: &O,
    n: usize,
    max_configs: usize,
) -> ValencyReport<O, P::State>
where
    O: BranchingSpec,
    P: ProcessAutomaton<Op = O::Op, Resp = O::Resp>,
{
    let initial = Config::initial(protocol, object.clone(), n);

    // Forward exploration: enumerate reachable configurations and edges.
    let mut index: HashMap<Config<O, P::State>, usize> = HashMap::new();
    let mut nodes: Vec<Config<O, P::State>> = Vec::new();
    // Edges annotated with the pid that steps.
    let mut edges: Vec<Vec<(Pid, usize)>> = Vec::new();

    index.insert(initial.clone(), 0);
    nodes.push(initial);
    edges.push(Vec::new());
    let mut frontier = vec![0usize];
    while let Some(i) = frontier.pop() {
        let cfg = nodes[i].clone();
        let mut out = Vec::new();
        for pid in cfg.running().collect::<Vec<Pid>>() {
            for succ in cfg.step(protocol, pid) {
                let j = *index.entry(succ.clone()).or_insert_with(|| {
                    nodes.push(succ);
                    edges.push(Vec::new());
                    frontier.push(nodes.len() - 1);
                    nodes.len() - 1
                });
                out.push((pid, j));
            }
        }
        assert!(
            nodes.len() <= max_configs,
            "valency analysis exceeded {max_configs} configurations"
        );
        edges[i] = out;
    }

    // Backward pass over the DAG: valence(c) = union of successor
    // valences; terminal configurations contribute their decision values.
    let order = postorder(&edges);
    let mut valence: Vec<Valence> = vec![Valence::new(); nodes.len()];
    let mut schedules: Vec<u128> = vec![0; nodes.len()];
    for &i in &order {
        if edges[i].is_empty() {
            valence[i] = nodes[i].decisions().collect();
            schedules[i] = 1;
        } else {
            let mut vs = Valence::new();
            let mut count: u128 = 0;
            for &(_, j) in &edges[i] {
                vs.extend(valence[j].iter().copied());
                count = count.saturating_add(schedules[j]);
            }
            valence[i] = vs;
            schedules[i] = count;
        }
    }

    let mut bivalent = 0;
    let mut univalent = 0;
    let mut critical = Vec::new();
    for i in 0..nodes.len() {
        if valence[i].len() >= 2 {
            bivalent += 1;
            if !edges[i].is_empty() && edges[i].iter().all(|&(_, j)| valence[j].len() == 1) {
                let mut outcome_by_pid: Vec<(Pid, Valence)> = Vec::new();
                for &(pid, j) in &edges[i] {
                    match outcome_by_pid.iter_mut().find(|(p, _)| *p == pid) {
                        Some((_, vs)) => vs.extend(valence[j].iter().copied()),
                        None => outcome_by_pid.push((pid, valence[j].clone())),
                    }
                }
                critical.push(CriticalConfig {
                    config: nodes[i].clone(),
                    outcome_by_pid,
                });
            }
        } else {
            univalent += 1;
        }
    }

    ValencyReport {
        initial_valence: valence[0].clone(),
        configs: nodes.len(),
        bivalent,
        univalent,
        critical,
        schedules: schedules[0],
    }
}

/// Iterative DFS postorder of a DAG given as adjacency lists.
///
/// # Panics
///
/// Panics if the graph has a cycle (the protocol is not wait-free).
fn postorder(edges: &[Vec<(Pid, usize)>]) -> Vec<usize> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; edges.len()];
    let mut order = Vec::with_capacity(edges.len());
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..edges.len() {
        if color[root] != Color::White {
            continue;
        }
        color[root] = Color::Grey;
        stack.push((root, 0));
        while let Some(&mut (i, ref mut next)) = stack.last_mut() {
            if *next < edges[i].len() {
                let (_, j) = edges[i][*next];
                *next += 1;
                match color[j] {
                    Color::White => {
                        color[j] = Color::Grey;
                        stack.push((j, 0));
                    }
                    Color::Grey => panic!("cycle in configuration graph: protocol not wait-free"),
                    Color::Black => {}
                }
            } else {
                color[i] = Color::Black;
                order.push(i);
                stack.pop();
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_model::{Action, ObjectSpec};
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    /// Theorem 4's protocol (test-and-set flavor).
    struct Tas2;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(Val),
    }

    impl ProcessAutomaton for Tas2 {
        type Op = RmwOp;
        type Resp = <RmwRegister as ObjectSpec>::Resp;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::TestAndSet)),
                St::Done(v) => Action::Decide(*v),
            }
        }
        fn observe(&self, pid: Pid, _st: &St, resp: &Val) -> St {
            if *resp == 0 {
                St::Done(pid.as_val())
            } else {
                St::Done(1 - pid.as_val())
            }
        }
    }

    #[test]
    fn tas_protocol_is_initially_bivalent() {
        let report = analyze(&Tas2, &RmwRegister::new(0), 2, 100_000);
        assert!(report.initially_bivalent());
        assert_eq!(report.initial_valence, Valence::from([0, 1]));
        assert!(report.bivalent >= 1);
        assert!(report.univalent >= 2);
        assert_eq!(report.bivalent + report.univalent, report.configs);
    }

    #[test]
    fn tas_protocol_has_a_critical_configuration() {
        // The initial configuration itself is critical for the one-shot
        // TAS protocol: whoever steps first wins.
        let report = analyze(&Tas2, &RmwRegister::new(0), 2, 100_000);
        assert!(!report.critical.is_empty());
        let crit = &report.critical[0];
        assert_eq!(crit.outcome_by_pid.len(), 2);
        let v0 = &crit.outcome_by_pid[0].1;
        let v1 = &crit.outcome_by_pid[1].1;
        assert_ne!(v0, v1, "a critical state separates the outcomes");
    }

    #[test]
    fn solo_protocol_has_one_schedule_and_is_univalent() {
        struct Solo;
        impl ProcessAutomaton for Solo {
            type Op = RmwOp;
            type Resp = Val;
            type State = St;
            fn start(&self, _pid: Pid) -> St {
                St::Start
            }
            fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
                match st {
                    St::Start => Action::Invoke(RmwOp(RmwFn::TestAndSet)),
                    St::Done(v) => Action::Decide(*v),
                }
            }
            fn observe(&self, pid: Pid, _st: &St, _resp: &Val) -> St {
                St::Done(pid.as_val())
            }
        }
        let report = analyze(&Solo, &RmwRegister::new(0), 1, 1000);
        assert_eq!(report.schedules, 1);
        assert_eq!(report.initial_valence, Valence::from([0]));
        assert_eq!(report.bivalent, 0);
    }

    #[test]
    fn two_process_tas_has_six_interleavings() {
        // Each process takes 2 steps (TAS, then decide): C(4,2) = 6.
        let report = analyze(&Tas2, &RmwRegister::new(0), 2, 100_000);
        assert_eq!(report.schedules, 6);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn config_budget_enforced() {
        analyze(&Tas2, &RmwRegister::new(0), 2, 2);
    }
}

/// A mechanized instance of the contradiction at the heart of the
/// impossibility proofs: two configurations with *disjoint singleton*
/// valences that some process cannot tell apart (same object state, same
/// local state). Running that process solo from either configuration
/// produces identical executions, so it must decide the same value in
/// both — contradicting the disjoint valences. A *correct* protocol never
/// exhibits such a pair; the proofs of Theorems 2, 6, 11 and 22 show that
/// for weak objects any hypothetical protocol must.
#[derive(Clone, Debug)]
pub struct IndistinguishablePair<O, S> {
    /// First configuration.
    pub left: Config<O, S>,
    /// Second configuration.
    pub right: Config<O, S>,
    /// The process that cannot tell them apart.
    pub observer: Pid,
    /// Valence of `left`.
    pub left_valence: Valence,
    /// Valence of `right`.
    pub right_valence: Valence,
}

/// Search the one- and two-step successors of every critical configuration
/// for an [`IndistinguishablePair`]. For a correct wait-free consensus
/// protocol the result is empty — this is the exact consistency property
/// the paper's case analyses exploit, available as a reusable check.
pub fn refutation_witnesses<O, P>(
    protocol: &P,
    object: &O,
    n: usize,
    max_configs: usize,
) -> Vec<IndistinguishablePair<O, P::State>>
where
    O: BranchingSpec,
    P: ProcessAutomaton<Op = O::Op, Resp = O::Resp>,
{
    // Rebuild the reachable graph with a valence lookup.
    let initial = Config::initial(protocol, object.clone(), n);
    let mut index: HashMap<Config<O, P::State>, usize> = HashMap::new();
    let mut nodes: Vec<Config<O, P::State>> = Vec::new();
    let mut edges: Vec<Vec<(Pid, usize)>> = Vec::new();
    index.insert(initial.clone(), 0);
    nodes.push(initial);
    edges.push(Vec::new());
    let mut frontier = vec![0usize];
    while let Some(i) = frontier.pop() {
        let cfg = nodes[i].clone();
        let mut out = Vec::new();
        for pid in cfg.running().collect::<Vec<Pid>>() {
            for succ in cfg.step(protocol, pid) {
                let j = *index.entry(succ.clone()).or_insert_with(|| {
                    nodes.push(succ);
                    edges.push(Vec::new());
                    frontier.push(nodes.len() - 1);
                    nodes.len() - 1
                });
                out.push((pid, j));
            }
        }
        assert!(nodes.len() <= max_configs, "witness search exceeded {max_configs} configs");
        edges[i] = out;
    }
    let order = postorder(&edges);
    let mut valence: Vec<Valence> = vec![Valence::new(); nodes.len()];
    for &i in &order {
        if edges[i].is_empty() {
            valence[i] = nodes[i].decisions().collect();
        } else {
            let mut vs = Valence::new();
            for &(_, j) in &edges[i] {
                vs.extend(valence[j].iter().copied());
            }
            valence[i] = vs;
        }
    }

    // Critical configurations and their 1- and 2-step successors.
    let mut witnesses = Vec::new();
    for i in 0..nodes.len() {
        if valence[i].len() < 2 || edges[i].is_empty() {
            continue;
        }
        if !edges[i].iter().all(|&(_, j)| valence[j].len() == 1) {
            continue; // not critical
        }
        let mut candidates: Vec<usize> = edges[i].iter().map(|&(_, j)| j).collect();
        for &(_, j) in &edges[i] {
            candidates.extend(edges[j].iter().map(|&(_, k)| k));
        }
        candidates.sort_unstable();
        candidates.dedup();
        for (a_pos, &a) in candidates.iter().enumerate() {
            for &b in &candidates[a_pos + 1..] {
                if valence[a].len() != 1
                    || valence[b].len() != 1
                    || valence[a] == valence[b]
                    || nodes[a].object != nodes[b].object
                {
                    continue;
                }
                for r in 0..n {
                    let (ca, cb) = (&nodes[a], &nodes[b]);
                    if ca.procs[r].is_running()
                        && ca.procs[r] == cb.procs[r]
                        && ca.has_moved(Pid(r)) == cb.has_moved(Pid(r))
                    {
                        witnesses.push(IndistinguishablePair {
                            left: ca.clone(),
                            right: cb.clone(),
                            observer: Pid(r),
                            left_valence: valence[a].clone(),
                            right_valence: valence[b].clone(),
                        });
                    }
                }
            }
        }
    }
    witnesses
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use waitfree_model::{Action, ObjectSpec};
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    struct Tas2;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(Val),
    }

    impl ProcessAutomaton for Tas2 {
        type Op = RmwOp;
        type Resp = <RmwRegister as ObjectSpec>::Resp;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::TestAndSet)),
                St::Done(v) => Action::Decide(*v),
            }
        }
        fn observe(&self, pid: Pid, _st: &St, resp: &Val) -> St {
            if *resp == 0 {
                St::Done(pid.as_val())
            } else {
                St::Done(1 - pid.as_val())
            }
        }
    }

    #[test]
    fn correct_tas_protocol_has_no_witness() {
        // The informative response of test-and-set is precisely what
        // destroys indistinguishability — the paper's point about why
        // registers fail where RMW succeeds.
        let witnesses = refutation_witnesses(&Tas2, &RmwRegister::new(0), 2, 100_000);
        assert!(witnesses.is_empty(), "{witnesses:?}");
    }

    /// The proof step of Theorem 11's deq/deq case, mechanized directly:
    /// with three processes on a queue, the configurations reached by
    /// "P dequeues then Q dequeues" and "Q dequeues then P dequeues" are
    /// indistinguishable to R — same object state, same R local state —
    /// so any solo execution of R proceeds identically from both. (In the
    /// paper this contradicts the assumed X-/Y-valence of the two
    /// configurations; here we verify the indistinguishability itself and
    /// the identity of R's solo runs.)
    #[test]
    fn queue_deq_deq_orders_are_indistinguishable_to_third_process() {
        use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

        /// Each process dequeues once and decides by what it drew (the
        /// Theorem 9 protocol shape, deliberately run with n = 3).
        struct Deq3;
        impl ProcessAutomaton for Deq3 {
            type Op = QueueOp;
            type Resp = QueueResp;
            type State = St;
            fn start(&self, _pid: Pid) -> St {
                St::Start
            }
            fn action(&self, _pid: Pid, st: &St) -> Action<QueueOp> {
                match st {
                    St::Start => Action::Invoke(QueueOp::Deq),
                    St::Done(v) => Action::Decide(*v),
                }
            }
            fn observe(&self, pid: Pid, _st: &St, resp: &QueueResp) -> St {
                match resp {
                    QueueResp::Item(100) => St::Done(pid.as_val()),
                    // Losers remember *which* item they drew, so local
                    // states genuinely depend on the order.
                    _ => St::Done(pid.as_val() + 10),
                }
            }
        }

        let object = FifoQueue::from_items([100, 200, 300]);
        let init = Config::initial(&Deq3, object, 3);
        // Order 1: P0 deq, P1 deq. Order 2: P1 deq, P0 deq.
        let c1 = init.step(&Deq3, Pid(0)).remove(0).step(&Deq3, Pid(1)).remove(0);
        let c2 = init.step(&Deq3, Pid(1)).remove(0).step(&Deq3, Pid(0)).remove(0);
        // Indistinguishable to P2: same queue, same local state.
        assert_eq!(c1.object, c2.object, "queue state agrees across orders");
        assert_eq!(c1.procs[2], c2.procs[2], "R's view agrees across orders");
        // And therefore R's solo run is identical from both.
        let solo = |mut cfg: Config<FifoQueue, St>| -> Vec<Val> {
            while cfg.procs[2].is_running() {
                cfg = cfg.step(&Deq3, Pid(2)).remove(0);
            }
            cfg.procs[2].decision().into_iter().collect()
        };
        assert_eq!(solo(c1.clone()), solo(c2.clone()));
        // The two configurations differ only in P0's and P1's local
        // states — the exact situation the paper's contradiction uses.
        assert!(c1.procs[0] != c2.procs[0] || c1.procs[1] != c2.procs[1]);
    }
}
