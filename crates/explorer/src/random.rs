//! Randomized schedule testing for process counts beyond exhaustive reach.
//!
//! The hierarchy's level-∞ protocols (compare-and-swap, augmented queue,
//! memory-to-memory move/swap) work for *arbitrary* n; exhaustive
//! exploration is feasible only for small n. This module stress-tests
//! larger n with seeded random schedules, including random crashes —
//! complementing, not replacing, [`crate::check`].

use std::collections::BTreeSet;

use waitfree_faults::rng::DetRng;
use waitfree_model::{BranchingSpec, Pid, ProcessAutomaton, Val};

use crate::check::Violation;
use crate::config::Config;

/// Settings for randomized runs.
#[derive(Clone, Debug)]
pub struct RandomSettings {
    /// Number of runs.
    pub runs: usize,
    /// RNG seed (runs use `seed`, `seed+1`, …).
    pub seed: u64,
    /// Per-run probability (×1000) that a scheduled process crashes
    /// instead of stepping. `0` disables crashes.
    pub crash_per_mille: u32,
    /// Abort a run after this many steps (treat as wait-freedom failure).
    pub max_steps_per_run: usize,
}

impl Default for RandomSettings {
    fn default() -> Self {
        RandomSettings {
            runs: 1000,
            seed: 0xC0FFEE,
            crash_per_mille: 50,
            max_steps_per_run: 100_000,
        }
    }
}

/// Result of randomized testing.
#[derive(Clone, Debug)]
pub struct RandomReport {
    /// Runs executed.
    pub runs: usize,
    /// First violation found, if any.
    pub violation: Option<Violation>,
    /// Decision values observed across runs.
    pub decisions_seen: BTreeSet<Val>,
    /// Total steps across all runs.
    pub total_steps: u64,
    /// Longest single run (steps).
    pub max_run_steps: usize,
}

impl RandomReport {
    /// Whether all runs satisfied agreement, validity and the step bound.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// Run `settings.runs` random schedules of the protocol and verify
/// agreement + validity at the end of each, and that each run terminates
/// within the step bound.
pub fn run_random<O, P>(
    protocol: &P,
    object: &O,
    n: usize,
    settings: &RandomSettings,
) -> RandomReport
where
    O: BranchingSpec,
    P: ProcessAutomaton<Op = O::Op, Resp = O::Resp>,
{
    let mut report = RandomReport {
        runs: 0,
        violation: None,
        decisions_seen: BTreeSet::new(),
        total_steps: 0,
        max_run_steps: 0,
    };

    for run in 0..settings.runs {
        let mut rng = DetRng::new(settings.seed.wrapping_add(run as u64));
        let mut cfg = Config::initial(protocol, object.clone(), n);
        let mut steps = 0usize;
        loop {
            let running: Vec<Pid> = cfg.running().collect();
            if running.is_empty() {
                break;
            }
            if steps >= settings.max_steps_per_run {
                report.violation = Some(Violation::WaitFreedom);
                return report;
            }
            let pid = running[rng.below(running.len())];
            // Never crash the last running process: a run where everyone
            // crashes is vacuous.
            if running.len() > 1 && rng.per_mille(settings.crash_per_mille) {
                cfg = cfg.crash(pid).expect("pid is running");
                continue;
            }
            let mut succs = cfg.step(protocol, pid);
            let k = rng.below(succs.len());
            cfg = succs.swap_remove(k);
            steps += 1;
        }
        // Terminal: verify agreement and validity.
        let mut first: Option<Val> = None;
        for v in cfg.decisions() {
            report.decisions_seen.insert(v);
            match first {
                None => first = Some(v),
                Some(f) if f != v => {
                    report.violation = Some(Violation::Agreement { values: (f, v) });
                    return report;
                }
                Some(_) => {}
            }
            if v < 0 || v as usize >= n || !cfg.has_moved(Pid(v as usize)) {
                report.violation = Some(Violation::Validity { value: v });
                return report;
            }
        }
        report.runs += 1;
        report.total_steps += steps as u64;
        report.max_run_steps = report.max_run_steps.max(steps);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_model::Action;
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    /// Theorem 7's protocol: compare-and-swap consensus for any n.
    /// Register starts at -1; each process CASes its own id in.
    struct CasN;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(Val),
    }

    impl ProcessAutomaton for CasN {
        type Op = RmwOp;
        type Resp = Val;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::CompareAndSwap(-1, pid.as_val()))),
                St::Done(v) => Action::Decide(*v),
            }
        }
        fn observe(&self, pid: Pid, _st: &St, resp: &Val) -> St {
            if *resp == -1 {
                St::Done(pid.as_val())
            } else {
                St::Done(*resp)
            }
        }
    }

    #[test]
    fn cas_consensus_randomized_eight_processes() {
        let settings = RandomSettings {
            runs: 200,
            ..RandomSettings::default()
        };
        let report = run_random(&CasN, &RmwRegister::new(-1), 8, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.runs, 200);
        assert!(report.decisions_seen.len() > 1, "several winners across seeds");
    }

    /// Broken: everyone decides themselves.
    struct Selfish;
    impl ProcessAutomaton for Selfish {
        type Op = RmwOp;
        type Resp = Val;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::Identity)),
                St::Done(_) => Action::Decide(pid.as_val()),
            }
        }
        fn observe(&self, _pid: Pid, _st: &St, _resp: &Val) -> St {
            St::Done(0)
        }
    }

    #[test]
    fn randomized_detects_disagreement() {
        let report = run_random(&Selfish, &RmwRegister::new(0), 4, &RandomSettings::default());
        assert!(matches!(report.violation, Some(Violation::Agreement { .. })));
    }

    /// Spins forever.
    struct Spinner;
    impl ProcessAutomaton for Spinner {
        type Op = RmwOp;
        type Resp = Val;
        type State = u8;
        fn start(&self, _pid: Pid) -> u8 {
            0
        }
        fn action(&self, _pid: Pid, _st: &u8) -> Action<RmwOp> {
            Action::Invoke(RmwOp(RmwFn::Identity))
        }
        fn observe(&self, _pid: Pid, st: &u8, _resp: &Val) -> u8 {
            *st
        }
    }

    #[test]
    fn randomized_detects_nontermination() {
        let settings = RandomSettings {
            runs: 1,
            max_steps_per_run: 100,
            ..RandomSettings::default()
        };
        let report = run_random(&Spinner, &RmwRegister::new(0), 2, &settings);
        assert_eq!(report.violation, Some(Violation::WaitFreedom));
    }

    #[test]
    fn reports_are_reproducible_by_seed() {
        let settings = RandomSettings {
            runs: 50,
            ..RandomSettings::default()
        };
        let a = run_random(&CasN, &RmwRegister::new(-1), 5, &settings);
        let b = run_random(&CasN, &RmwRegister::new(-1), 5, &settings);
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.decisions_seen, b.decisions_seen);
    }
}
