//! Exhaustive verification of consensus protocols.
//!
//! [`check_consensus`] explores *every* schedule of a protocol (optionally
//! including crash steps) and verifies the three properties the paper
//! demands of a wait-free consensus protocol (§3):
//!
//! 1. **Agreement** — no history has more than one decision value;
//! 2. **Validity** — if a history has decision value `Pⱼ`, then `Pⱼ` took
//!    at least one step (ruling out predefined choices);
//! 3. **Wait-freedom** — no process takes an infinite number of steps
//!    without deciding. Because configurations are finite, an infinite run
//!    exists iff the configuration graph has a reachable cycle, which the
//!    three-color depth-first search detects exactly.

use std::collections::{BTreeSet, HashMap};

use waitfree_model::{BranchingSpec, Pid, ProcessAutomaton, Val};

use crate::config::Config;

/// Settings for the exhaustive checker.
#[derive(Clone, Debug)]
pub struct CheckSettings {
    /// Explore crash steps: at any point the adversary may silently halt a
    /// running process. The surviving processes must still decide — this
    /// is the fault-tolerance content of wait-freedom. Enabled by default.
    pub crashes: bool,
    /// Abort after visiting this many distinct configurations.
    pub max_configs: usize,
}

impl Default for CheckSettings {
    fn default() -> Self {
        CheckSettings {
            crashes: true,
            max_configs: 5_000_000,
        }
    }
}

/// Why a protocol failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided differently in the same execution.
    Agreement {
        /// The conflicting decision values.
        values: (Val, Val),
    },
    /// A decision value names a process that never took a step (or is not
    /// a process name at all).
    Validity {
        /// The invalid decision value.
        value: Val,
    },
    /// A reachable cycle exists: some process can take infinitely many
    /// steps without deciding.
    WaitFreedom,
    /// The configuration budget was exhausted before the search finished.
    Budget {
        /// The configured limit that was hit.
        limit: usize,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Agreement { values } => {
                write!(f, "agreement violated: {} vs {}", values.0, values.1)
            }
            Violation::Validity { value } => {
                write!(f, "validity violated: decided {value}, which took no step")
            }
            Violation::WaitFreedom => write!(f, "wait-freedom violated: infinite run exists"),
            Violation::Budget { limit } => write!(f, "configuration budget {limit} exhausted"),
        }
    }
}

/// One scheduling decision in a counterexample trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceStep {
    /// The process took one protocol step (operation or decide).
    Step(Pid),
    /// The adversary crashed the process.
    Crash(Pid),
}

impl std::fmt::Display for TraceStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStep::Step(p) => write!(f, "{p} steps"),
            TraceStep::Crash(p) => write!(f, "{p} crashes"),
        }
    }
}

/// Result of exhaustively checking a protocol.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// First violation found, or `None` if the protocol is correct.
    pub violation: Option<Violation>,
    /// Number of distinct configurations visited.
    pub configs: usize,
    /// Decision values observed across all executions.
    pub decisions_seen: BTreeSet<Val>,
    /// Length of the longest simple execution explored (steps).
    pub max_depth: usize,
    /// A schedule witnessing the violation: the sequence of scheduling
    /// decisions from the initial configuration. `None` when the protocol
    /// passed (or the violation was a budget overrun).
    pub counterexample: Option<Vec<TraceStep>>,
}

impl CheckReport {
    /// Whether the protocol passed all three properties.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violation.is_none()
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Color {
    /// On the current DFS path.
    Grey,
    /// Fully explored.
    Black,
}

/// Exhaustively verify an `n`-process consensus protocol over `object`.
///
/// Every interleaving of process steps (at linearization granularity) is
/// explored; if [`CheckSettings::crashes`] is set, the adversary may also
/// halt processes at any point. See the crate root for a worked example.
pub fn check_consensus<O, P>(
    protocol: &P,
    object: &O,
    n: usize,
    settings: &CheckSettings,
) -> CheckReport
where
    O: BranchingSpec,
    P: ProcessAutomaton<Op = O::Op, Resp = O::Resp>,
{
    let initial = Config::initial(protocol, object.clone(), n);
    let mut report = CheckReport {
        violation: None,
        configs: 0,
        decisions_seen: BTreeSet::new(),
        max_depth: 0,
        counterexample: None,
    };
    let mut colors: HashMap<Config<O, P::State>, Color> = HashMap::new();

    // Iterative three-color DFS. Each frame owns the list of labeled
    // successor configurations of one node and an index into it; the
    // incoming label reconstructs counterexample schedules.
    struct Frame<C> {
        config: C,
        incoming: Option<TraceStep>,
        succs: Vec<(TraceStep, C)>,
        next: usize,
    }

    let succs_of = |cfg: &Config<O, P::State>| -> Vec<(TraceStep, Config<O, P::State>)> {
        let mut out = Vec::new();
        for pid in cfg.running().collect::<Vec<Pid>>() {
            out.extend(cfg.step(protocol, pid).into_iter().map(|c| (TraceStep::Step(pid), c)));
            if settings.crashes {
                out.extend(cfg.crash(pid).map(|c| (TraceStep::Crash(pid), c)));
            }
        }
        out
    };

    let check_leaf = |cfg: &Config<O, P::State>, report: &mut CheckReport| {
        let mut first: Option<Val> = None;
        for v in cfg.decisions() {
            report.decisions_seen.insert(v);
            match first {
                None => first = Some(v),
                Some(f) if f != v => {
                    report.violation = Some(Violation::Agreement { values: (f, v) });
                    return;
                }
                Some(_) => {}
            }
            let valid = v >= 0 && (v as usize) < cfg.n() && cfg.has_moved(Pid(v as usize));
            if !valid {
                report.violation = Some(Violation::Validity { value: v });
                return;
            }
        }
    };

    enum Todo<C> {
        Pop,
        Visit(C),
    }

    // The schedule leading to the currently open frame (excluding root).
    let trace_of = |stack: &[Frame<Config<O, P::State>>]| -> Vec<TraceStep> {
        stack.iter().filter_map(|f| f.incoming).collect()
    };

    colors.insert(initial.clone(), Color::Grey);
    report.configs = 1;
    let succs = succs_of(&initial);
    let mut stack = vec![Frame { config: initial, incoming: None, succs, next: 0 }];

    while !stack.is_empty() {
        report.max_depth = report.max_depth.max(stack.len() - 1);
        let todo = {
            let frame = stack.last_mut().expect("non-empty stack");
            if frame.next == 0 && frame.config.is_terminal() {
                check_leaf(&frame.config, &mut report);
                if report.violation.is_some() {
                    report.counterexample = Some(trace_of(&stack));
                    return report;
                }
            }
            if frame.next >= frame.succs.len() {
                Todo::Pop
            } else {
                let child = frame.succs[frame.next].clone();
                frame.next += 1;
                Todo::Visit(child)
            }
        };
        match todo {
            Todo::Pop => {
                let frame = stack.pop().expect("non-empty stack");
                colors.insert(frame.config, Color::Black);
            }
            Todo::Visit((label, child)) => match colors.get(&child) {
                Some(Color::Grey) => {
                    report.violation = Some(Violation::WaitFreedom);
                    let mut trace = trace_of(&stack);
                    trace.push(label);
                    report.counterexample = Some(trace);
                    return report;
                }
                Some(Color::Black) => {}
                None => {
                    report.configs += 1;
                    if report.configs > settings.max_configs {
                        report.violation = Some(Violation::Budget {
                            limit: settings.max_configs,
                        });
                        return report;
                    }
                    colors.insert(child.clone(), Color::Grey);
                    let succs = succs_of(&child);
                    stack.push(Frame { config: child, incoming: Some(label), succs, next: 0 });
                }
            },
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_model::{Action, ObjectSpec};
    use waitfree_objects::register::{RegOp, RegResp, RwRegister};
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    /// Theorem 4's two-process protocol for any non-trivial RMW.
    struct Rmw2 {
        f: RmwFn,
        initial: Val,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(Val),
    }

    impl ProcessAutomaton for Rmw2 {
        type Op = RmwOp;
        type Resp = <RmwRegister as ObjectSpec>::Resp;
        type State = St;

        fn start(&self, _pid: Pid) -> St {
            St::Start
        }

        fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(self.f)),
                St::Done(v) => Action::Decide(*v),
            }
        }

        fn observe(&self, pid: Pid, _st: &St, resp: &Val) -> St {
            // Saw the initial value => I was linearized first => I win.
            if *resp == self.initial {
                St::Done(pid.as_val())
            } else {
                St::Done(1 - pid.as_val())
            }
        }
    }

    #[test]
    fn tas_consensus_passes_exhaustive_check() {
        let proto = Rmw2 { f: RmwFn::TestAndSet, initial: 0 };
        let report = check_consensus(&proto, &RmwRegister::new(0), 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen, BTreeSet::from([0, 1]));
        assert!(report.configs > 4);
    }

    #[test]
    fn fetch_and_add_consensus_passes() {
        let proto = Rmw2 { f: RmwFn::FetchAndAdd(1), initial: 0 };
        let report = check_consensus(&proto, &RmwRegister::new(0), 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    /// A broken protocol: both processes decide themselves.
    struct Selfish;

    impl ProcessAutomaton for Selfish {
        type Op = RmwOp;
        type Resp = Val;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::TestAndSet)),
                St::Done(_) => Action::Decide(pid.as_val()),
            }
        }
        fn observe(&self, _pid: Pid, _st: &St, resp: &Val) -> St {
            St::Done(*resp)
        }
    }

    #[test]
    fn disagreement_is_detected() {
        let report = check_consensus(&Selfish, &RmwRegister::new(0), 2, &CheckSettings::default());
        assert!(matches!(report.violation, Some(Violation::Agreement { .. })), "{report:?}");
    }

    /// A protocol deciding a constant: valid only for the process that
    /// moved; deciding P1 when P1 never ran violates validity.
    struct Constant;

    impl ProcessAutomaton for Constant {
        type Op = RmwOp;
        type Resp = Val;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::Identity)),
                St::Done(_) => Action::Decide(1),
            }
        }
        fn observe(&self, _pid: Pid, _st: &St, _resp: &Val) -> St {
            St::Done(0)
        }
    }

    #[test]
    fn validity_violation_is_detected() {
        // In the run where only P0 executes (P1 crashed), decision 1 names
        // a process that took no step.
        let report = check_consensus(&Constant, &RmwRegister::new(0), 2, &CheckSettings::default());
        assert_eq!(report.violation, Some(Violation::Validity { value: 1 }));
    }

    /// A protocol that spins forever re-reading a register.
    struct Spinner;

    impl ProcessAutomaton for Spinner {
        type Op = RegOp;
        type Resp = RegResp;
        type State = u8;
        fn start(&self, _pid: Pid) -> u8 {
            0
        }
        fn action(&self, _pid: Pid, _st: &u8) -> Action<RegOp> {
            Action::Invoke(RegOp::Read)
        }
        fn observe(&self, _pid: Pid, st: &u8, _resp: &RegResp) -> u8 {
            *st // never progresses
        }
    }

    #[test]
    fn livelock_is_detected_as_wait_freedom_violation() {
        let report = check_consensus(&Spinner, &RwRegister::new(0), 1, &CheckSettings::default());
        assert_eq!(report.violation, Some(Violation::WaitFreedom));
    }

    /// A protocol that busy-waits on a register another process must set —
    /// the "conditional waiting" the wait-free condition forbids.
    struct Waiter;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum WSt {
        Announce,
        Wait,
        Done(Val),
    }

    impl ProcessAutomaton for Waiter {
        type Op = RegOp;
        type Resp = RegResp;
        type State = WSt;
        fn start(&self, _pid: Pid) -> WSt {
            WSt::Announce
        }
        fn action(&self, pid: Pid, st: &WSt) -> Action<RegOp> {
            match st {
                WSt::Announce if pid == Pid(0) => Action::Invoke(RegOp::Write(1)),
                WSt::Announce | WSt::Wait => Action::Invoke(RegOp::Read),
                WSt::Done(v) => Action::Decide(*v),
            }
        }
        fn observe(&self, pid: Pid, st: &WSt, resp: &RegResp) -> WSt {
            match (pid, st, resp) {
                (Pid(0), WSt::Announce, _) => WSt::Done(0),
                (_, _, RegResp::Read(1)) => WSt::Done(0),
                _ => WSt::Wait, // keep polling until P0's write lands
            }
        }
    }

    #[test]
    fn busy_waiting_on_another_process_is_rejected() {
        let report = check_consensus(&Waiter, &RwRegister::new(0), 2, &CheckSettings::default());
        assert_eq!(report.violation, Some(Violation::WaitFreedom));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let proto = Rmw2 { f: RmwFn::TestAndSet, initial: 0 };
        let settings = CheckSettings { crashes: true, max_configs: 3 };
        let report = check_consensus(&proto, &RmwRegister::new(0), 2, &settings);
        assert_eq!(report.violation, Some(Violation::Budget { limit: 3 }));
    }

    #[test]
    fn crash_free_check_also_passes() {
        let proto = Rmw2 { f: RmwFn::TestAndSet, initial: 0 };
        let settings = CheckSettings { crashes: false, ..CheckSettings::default() };
        let report = check_consensus(&proto, &RmwRegister::new(0), 2, &settings);
        assert!(report.is_ok());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use waitfree_model::{Action, ProcessAutomaton};
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    /// Both processes decide themselves: the counterexample must be a
    /// concrete schedule ending in disagreement.
    struct Selfish;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done,
    }

    impl ProcessAutomaton for Selfish {
        type Op = RmwOp;
        type Resp = Val;
        type State = St;
        fn start(&self, _pid: Pid) -> St {
            St::Start
        }
        fn action(&self, pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::TestAndSet)),
                St::Done => Action::Decide(pid.as_val()),
            }
        }
        fn observe(&self, _pid: Pid, _st: &St, _resp: &Val) -> St {
            St::Done
        }
    }

    #[test]
    fn agreement_violation_comes_with_a_schedule() {
        let report = check_consensus(&Selfish, &RmwRegister::new(0), 2, &CheckSettings::default());
        assert!(matches!(report.violation, Some(Violation::Agreement { .. })));
        let trace = report.counterexample.expect("violations carry schedules");
        assert!(!trace.is_empty());
        // Replaying the schedule must reproduce the disagreement.
        let mut cfg = crate::config::Config::initial(&Selfish, RmwRegister::new(0), 2);
        for step in &trace {
            cfg = match step {
                TraceStep::Step(p) => cfg.step(&Selfish, *p).remove(0),
                TraceStep::Crash(p) => cfg.crash(*p).expect("running"),
            };
        }
        let decisions: std::collections::BTreeSet<Val> = cfg.decisions().collect();
        assert_eq!(decisions.len(), 2, "schedule reproduces the disagreement");
    }

    #[test]
    fn passing_protocols_have_no_counterexample() {
        use crate::check::tests_support::Rmw2;
        let proto = Rmw2 { f: RmwFn::TestAndSet, initial: 0 };
        let report = check_consensus(&proto, &RmwRegister::new(0), 2, &CheckSettings::default());
        assert!(report.is_ok());
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn trace_step_display() {
        assert_eq!(TraceStep::Step(Pid(0)).to_string(), "P0 steps");
        assert_eq!(TraceStep::Crash(Pid(2)).to_string(), "P2 crashes");
    }
}

/// Protocol fixtures shared between test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
    use waitfree_objects::rmw::{RmwFn, RmwOp};

    /// Theorem 4's two-process protocol over a non-trivial RMW.
    pub(crate) struct Rmw2 {
        pub f: RmwFn,
        pub initial: Val,
    }

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    pub(crate) enum St {
        Start,
        Done(Val),
    }

    impl ProcessAutomaton for Rmw2 {
        type Op = RmwOp;
        type Resp = Val;
        type State = St;

        fn start(&self, _pid: Pid) -> St {
            St::Start
        }

        fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(self.f)),
                St::Done(v) => Action::Decide(*v),
            }
        }

        fn observe(&self, pid: Pid, _st: &St, resp: &Val) -> St {
            if *resp == self.initial {
                St::Done(pid.as_val())
            } else {
                St::Done(1 - pid.as_val())
            }
        }
    }
}
