//! Bounded protocol synthesis: the executable analog of "no wait-free
//! consensus protocol exists for object Y".
//!
//! The paper's negative results (Theorems 2, 6, 11, 22) quantify over *all*
//! protocols. A finite search cannot close that quantifier, but it can
//! close it over the finite space of deterministic protocols of bounded
//! depth with a bounded operation alphabet: enumerate every candidate,
//! model-check each one exhaustively, and certify that none satisfies
//! agreement + validity + wait-freedom. The same search doubles as a
//! *positive* control: over a test-and-set alphabet it discovers
//! Theorem 4's protocol automatically.
//!
//! Protocols are decision trees. A [`SynthSpace`] describes the alphabet:
//! which operations a process may invoke (parameterized by its own
//! identity — protocols in the paper are symmetric up to pid), how
//! responses map to branches, and which decision values leaves may carry.

use std::hash::{Hash, Hasher};
use std::rc::Rc;

use waitfree_model::{Action, BranchingSpec, Pid, ProcessAutomaton, Val};

use crate::check::{check_consensus, CheckReport, CheckSettings};

/// A decision value at a protocol-tree leaf, possibly referring to the
/// executing process's own identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymbolicVal {
    /// A concrete value.
    Const(Val),
    /// The executing process's pid.
    MyId,
    /// The *other* process's pid in a two-process protocol (`1 - my id`).
    /// Lets symmetric trees express "the peer won".
    OtherOfTwo,
}

impl SymbolicVal {
    /// Resolve for a given process.
    #[must_use]
    pub fn resolve(self, pid: Pid) -> Val {
        match self {
            SymbolicVal::Const(v) => v,
            SymbolicVal::MyId => pid.as_val(),
            SymbolicVal::OtherOfTwo => 1 - pid.as_val(),
        }
    }
}

/// Response classifier carried by [`SymbolicOp`]: maps a concrete
/// response to a branch index in `0..slots`.
pub type ClassifyFn<O> = Box<dyn Fn(Pid, &<O as BranchingSpec>::Resp) -> usize>;

/// One operation in the synthesis alphabet, parameterized by the caller.
pub struct SymbolicOp<O: BranchingSpec> {
    /// Display name for reports (e.g. `"enq(my-id)"`).
    pub name: String,
    /// Instantiate the concrete operation for a process.
    pub make: Box<dyn Fn(Pid) -> O::Op>,
    /// Number of response branches the tree must provide.
    pub slots: usize,
    /// Map a concrete response to a branch index in `0..slots`.
    pub classify: ClassifyFn<O>,
}

/// The space of protocols to search: an operation alphabet plus the
/// decision values leaves may carry.
pub struct SynthSpace<O: BranchingSpec> {
    /// Operation alphabet.
    pub ops: Vec<SymbolicOp<O>>,
    /// Leaf decision values.
    pub decisions: Vec<SymbolicVal>,
}

/// A protocol decision tree. Interior nodes invoke an operation (an index
/// into [`SynthSpace::ops`]) and branch on the response; leaves decide (an
/// index into [`SynthSpace::decisions`]).
#[derive(Debug)]
pub enum Tree {
    /// Decide the value at this decision index.
    Decide(usize),
    /// Invoke the operation at this op index and branch on the response.
    Invoke {
        /// Index into [`SynthSpace::ops`].
        op: usize,
        /// One subtree per response slot.
        children: Vec<Rc<Tree>>,
    },
}

/// Enumerate every tree of depth at most `depth` over `space`.
///
/// Depth counts invocations on the longest path; depth 0 trees decide
/// immediately. The count grows doubly exponentially — keep `depth ≤ 2`
/// for response-rich alphabets.
#[must_use]
pub fn enumerate_trees<O: BranchingSpec>(space: &SynthSpace<O>, depth: usize) -> Vec<Rc<Tree>> {
    let mut trees: Vec<Rc<Tree>> =
        (0..space.decisions.len()).map(|d| Rc::new(Tree::Decide(d))).collect();
    if depth == 0 {
        return trees;
    }
    let sub = enumerate_trees(space, depth - 1);
    for (op_idx, op) in space.ops.iter().enumerate() {
        // Odometer over `slots` positions, each ranging over `sub`.
        let mut idx = vec![0usize; op.slots];
        loop {
            trees.push(Rc::new(Tree::Invoke {
                op: op_idx,
                children: idx.iter().map(|&i| sub[i].clone()).collect(),
            }));
            let mut k = 0;
            loop {
                if k == idx.len() {
                    break;
                }
                idx[k] += 1;
                if idx[k] < sub.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == idx.len() {
                break;
            }
        }
    }
    trees
}

/// A position in a protocol tree, compared by node identity. Trees are
/// immutable and shared, so pointer identity coincides with position
/// identity.
#[derive(Clone, Debug)]
pub struct Cursor(Rc<Tree>);

impl PartialEq for Cursor {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Cursor {}

impl Hash for Cursor {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (Rc::as_ptr(&self.0) as usize).hash(state);
    }
}

/// A candidate protocol: one tree per process, over a shared space.
pub struct SynthProtocol<'a, O: BranchingSpec> {
    space: &'a SynthSpace<O>,
    roots: Vec<Rc<Tree>>,
}

impl<'a, O: BranchingSpec> SynthProtocol<'a, O> {
    /// A protocol in which process `i` runs `roots[i]`.
    #[must_use]
    pub fn new(space: &'a SynthSpace<O>, roots: Vec<Rc<Tree>>) -> Self {
        SynthProtocol { space, roots }
    }
}

impl<O: BranchingSpec> ProcessAutomaton for SynthProtocol<'_, O> {
    type Op = O::Op;
    type Resp = O::Resp;
    type State = Cursor;

    fn start(&self, pid: Pid) -> Cursor {
        Cursor(self.roots[pid.0].clone())
    }

    fn action(&self, pid: Pid, state: &Cursor) -> Action<O::Op> {
        match &*state.0 {
            Tree::Decide(d) => Action::Decide(self.space.decisions[*d].resolve(pid)),
            Tree::Invoke { op, .. } => Action::Invoke((self.space.ops[*op].make)(pid)),
        }
    }

    fn observe(&self, pid: Pid, state: &Cursor, resp: &O::Resp) -> Cursor {
        match &*state.0 {
            Tree::Decide(_) => unreachable!("observe on a decided cursor"),
            Tree::Invoke { op, children } => {
                let slot = (self.space.ops[*op].classify)(pid, resp);
                Cursor(children[slot].clone())
            }
        }
    }
}

/// Outcome of a bounded synthesis search.
#[derive(Clone, Debug)]
pub struct SynthesisOutcome {
    /// Trees in the enumerated space.
    pub tree_count: usize,
    /// Candidate protocols examined (after prefiltering).
    pub candidates: usize,
    /// Candidates rejected by the cheap solo-run prefilter.
    pub rejected_solo: usize,
    /// Candidates rejected by full exhaustive model checking.
    pub rejected_check: usize,
    /// Surviving protocols — each is the per-process list of tree indices.
    /// Empty for impossibility certificates; non-empty when the object
    /// *can* solve consensus within the bound.
    pub survivors: Vec<Vec<usize>>,
    /// Total configurations explored across all model-checking runs.
    pub configs_total: u64,
}

impl SynthesisOutcome {
    /// Whether no protocol in the space solves consensus (the bounded
    /// impossibility certificate).
    #[must_use]
    pub fn is_impossible(&self) -> bool {
        self.survivors.is_empty()
    }
}

/// Check that in every solo execution of `pid` (all other processes
/// crashed at the start), the protocol decides `pid` — a cheap necessary
/// condition implied by validity, used to prefilter candidates.
fn solo_ok<O, P>(protocol: &P, object: &O, n: usize, pid: Pid, max_steps: usize) -> bool
where
    O: BranchingSpec,
    P: ProcessAutomaton<Op = O::Op, Resp = O::Resp>,
{
    // DFS over the (branching) solo executions of `pid`.
    let mut stack = vec![(object.clone(), protocol.start(pid), 0usize)];
    while let Some((obj, st, steps)) = stack.pop() {
        if steps > max_steps {
            return false; // runaway solo execution: not wait-free
        }
        match protocol.action(pid, &st) {
            Action::Decide(v) => {
                if v != pid.as_val() {
                    return false;
                }
            }
            Action::Invoke(op) => {
                for (obj2, resp) in obj.apply_all(pid, &op) {
                    let st2 = protocol.observe(pid, &st, &resp);
                    stack.push((obj2, st2, steps + 1));
                }
            }
        }
    }
    let _ = n;
    true
}

/// Search every *symmetric* candidate: all processes run the same tree
/// (with `MyId` leaves and pid-parameterized operations). This is the
/// tractable regime for `n ≥ 3`.
pub fn search_symmetric<O: BranchingSpec>(
    space: &SynthSpace<O>,
    object: &O,
    n: usize,
    depth: usize,
    settings: &CheckSettings,
) -> SynthesisOutcome {
    let trees = enumerate_trees(space, depth);
    let mut out = SynthesisOutcome {
        tree_count: trees.len(),
        candidates: 0,
        rejected_solo: 0,
        rejected_check: 0,
        survivors: Vec::new(),
        configs_total: 0,
    };
    for (i, t) in trees.iter().enumerate() {
        out.candidates += 1;
        let proto = SynthProtocol::new(space, vec![t.clone(); n]);
        if !Pid::all(n).all(|p| solo_ok(&proto, object, n, p, 64)) {
            out.rejected_solo += 1;
            continue;
        }
        let report: CheckReport = check_consensus(&proto, object, n, settings);
        out.configs_total += report.configs as u64;
        if report.is_ok() {
            out.survivors.push(vec![i; n]);
        } else {
            out.rejected_check += 1;
        }
    }
    out
}

/// Search every ordered pair of trees as a two-process protocol. The solo
/// prefilter runs per tree (not per pair), so the quadratic stage only
/// sees plausible candidates.
pub fn search_pairs<O: BranchingSpec>(
    space: &SynthSpace<O>,
    object: &O,
    depth: usize,
    settings: &CheckSettings,
) -> SynthesisOutcome {
    let trees = enumerate_trees(space, depth);
    let mut out = SynthesisOutcome {
        tree_count: trees.len(),
        candidates: 0,
        rejected_solo: 0,
        rejected_check: 0,
        survivors: Vec::new(),
        configs_total: 0,
    };
    // Per-tree solo filters for each role.
    let mut ok0 = Vec::new();
    let mut ok1 = Vec::new();
    for (i, t) in trees.iter().enumerate() {
        let proto = SynthProtocol::new(space, vec![t.clone(), t.clone()]);
        if solo_ok(&proto, object, 2, Pid(0), 64) {
            ok0.push(i);
        }
        if solo_ok(&proto, object, 2, Pid(1), 64) {
            ok1.push(i);
        }
    }
    let pruned_pairs = trees.len() * trees.len() - ok0.len() * ok1.len();
    out.rejected_solo = pruned_pairs;
    out.candidates = trees.len() * trees.len();
    for &i in &ok0 {
        for &j in &ok1 {
            let proto = SynthProtocol::new(space, vec![trees[i].clone(), trees[j].clone()]);
            let report = check_consensus(&proto, object, 2, settings);
            out.configs_total += report.configs as u64;
            if report.is_ok() {
                out.survivors.push(vec![i, j]);
            } else {
                out.rejected_check += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_objects::register::{RegOp, RegResp, RwRegister};
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    /// Alphabet over one RMW register with values {0, 1}: test-and-set
    /// (two response slots) only.
    fn tas_space() -> SynthSpace<RmwRegister> {
        SynthSpace {
            ops: vec![SymbolicOp {
                name: "test-and-set".into(),
                make: Box::new(|_| RmwOp(RmwFn::TestAndSet)),
                slots: 2,
                classify: Box::new(|_, r: &Val| usize::from(*r != 0)),
            }],
            decisions: vec![SymbolicVal::Const(0), SymbolicVal::Const(1)],
        }
    }

    /// Alphabet over one read/write register with values {0, 1}.
    fn reg_space() -> SynthSpace<RwRegister> {
        SynthSpace {
            ops: vec![
                SymbolicOp {
                    name: "read".into(),
                    make: Box::new(|_| RegOp::Read),
                    slots: 2,
                    classify: Box::new(|_, r: &RegResp| match r {
                        RegResp::Read(v) => usize::from(*v != 0),
                        RegResp::Written => unreachable!(),
                    }),
                },
                SymbolicOp {
                    name: "write(0)".into(),
                    make: Box::new(|_| RegOp::Write(0)),
                    slots: 1,
                    classify: Box::new(|_, _| 0),
                },
                SymbolicOp {
                    name: "write(1)".into(),
                    make: Box::new(|_| RegOp::Write(1)),
                    slots: 1,
                    classify: Box::new(|_, _| 0),
                },
            ],
            decisions: vec![SymbolicVal::Const(0), SymbolicVal::Const(1)],
        }
    }

    #[test]
    fn tree_enumeration_counts() {
        let space = tas_space();
        // depth 0: 2 leaves. depth 1: 2 + 1 op * 2^2 children = 6.
        assert_eq!(enumerate_trees(&space, 0).len(), 2);
        assert_eq!(enumerate_trees(&space, 1).len(), 6);
        // depth 2: 2 + 6^2 = 38.
        assert_eq!(enumerate_trees(&space, 2).len(), 38);
    }

    #[test]
    fn synthesis_discovers_theorem_4_protocol() {
        // Positive control: over a TAS alphabet the search must find a
        // working 2-process consensus protocol at depth 1.
        let space = tas_space();
        let outcome = search_pairs(&space, &RmwRegister::new(0), 1, &CheckSettings::default());
        assert!(!outcome.is_impossible(), "TAS must solve 2-consensus");
    }

    #[test]
    fn registers_cannot_solve_two_consensus_at_depth_two() {
        // Theorem 2, bounded form: no pair of depth-≤2 read/write protocols
        // over a single binary register solves 2-process consensus.
        let space = reg_space();
        let outcome = search_pairs(&space, &RwRegister::new(0), 2, &CheckSettings::default());
        assert!(outcome.is_impossible(), "survivors: {:?}", outcome.survivors);
        assert!(outcome.candidates > 0);
    }

    #[test]
    fn symmetric_search_rejects_registers_at_depth_two() {
        let space = reg_space();
        let outcome =
            search_symmetric(&space, &RwRegister::new(0), 2, 2, &CheckSettings::default());
        assert!(outcome.is_impossible());
        assert_eq!(
            outcome.candidates,
            outcome.tree_count,
            "every tree is examined once in symmetric mode"
        );
    }

    #[test]
    fn solo_prefilter_counts_are_consistent() {
        let space = tas_space();
        let outcome = search_pairs(&space, &RmwRegister::new(0), 1, &CheckSettings::default());
        assert_eq!(
            outcome.candidates,
            outcome.rejected_solo + outcome.rejected_check + outcome.survivors.len()
        );
    }

    #[test]
    fn symmetric_tas_with_myid_decisions_finds_protocol() {
        // The same search in symmetric mode, with MyId leaves: the winner
        // decides itself, the loser decides the other process.
        let space = SynthSpace {
            ops: tas_space().ops,
            decisions: vec![SymbolicVal::MyId, SymbolicVal::OtherOfTwo],
        };
        let outcome =
            search_symmetric(&space, &RmwRegister::new(0), 2, 1, &CheckSettings::default());
        assert!(!outcome.is_impossible());
    }
}
