//! Global configurations of a protocol system.

use waitfree_model::{Action, BranchingSpec, Pid, ProcessAutomaton, Val};

/// The status of one process within a configuration.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProcStatus<S> {
    /// Still executing the protocol, with this local state.
    Running(S),
    /// Halted with a decision value.
    Decided(Val),
    /// Halted without deciding (an undetected failure — the fault model
    /// the wait-free condition is about).
    Crashed,
}

impl<S> ProcStatus<S> {
    /// The decision value, if decided.
    pub fn decision(&self) -> Option<Val> {
        match self {
            ProcStatus::Decided(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the process can still take steps.
    pub fn is_running(&self) -> bool {
        matches!(self, ProcStatus::Running(_))
    }
}

/// A global configuration: the shared object's state, every process's
/// status, and the set of processes that have taken at least one step
/// (needed for the paper's validity condition: "If a history has decision
/// value Pⱼ, then Pⱼ took at least one step").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Config<O, S> {
    /// Shared object state.
    pub object: O,
    /// Per-process statuses, indexed by pid.
    pub procs: Vec<ProcStatus<S>>,
    /// Bitmask over pids: processes that have taken ≥ 1 step.
    pub moved: u64,
}

impl<O: BranchingSpec, S: Clone + Eq + std::hash::Hash + std::fmt::Debug> Config<O, S> {
    /// The initial configuration of `n` processes running `protocol`
    /// against `object`.
    pub fn initial<P>(protocol: &P, object: O, n: usize) -> Self
    where
        P: ProcessAutomaton<Op = O::Op, Resp = O::Resp, State = S>,
    {
        assert!(n <= 64, "at most 64 processes supported");
        Config {
            object,
            procs: Pid::all(n).map(|p| ProcStatus::Running(protocol.start(p))).collect(),
            moved: 0,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Whether `pid` has taken at least one step.
    pub fn has_moved(&self, pid: Pid) -> bool {
        self.moved & (1 << pid.0) != 0
    }

    /// Pids that can still take steps.
    pub fn running(&self) -> impl Iterator<Item = Pid> + '_ {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_running())
            .map(|(i, _)| Pid(i))
    }

    /// Whether no process can take a step (every process decided or
    /// crashed) — a leaf of the execution tree.
    pub fn is_terminal(&self) -> bool {
        self.procs.iter().all(|s| !s.is_running())
    }

    /// Decision values present in the configuration.
    pub fn decisions(&self) -> impl Iterator<Item = Val> + '_ {
        self.procs.iter().filter_map(ProcStatus::decision)
    }

    /// All configurations reachable by one step of `pid` (several when the
    /// object is nondeterministic). Crash steps are *not* included; see
    /// [`Config::crash`].
    ///
    /// Returns an empty vector if `pid` is not running.
    pub fn step<P>(&self, protocol: &P, pid: Pid) -> Vec<Self>
    where
        P: ProcessAutomaton<Op = O::Op, Resp = O::Resp, State = S>,
    {
        let ProcStatus::Running(local) = &self.procs[pid.0] else {
            return Vec::new();
        };
        match protocol.action(pid, local) {
            Action::Decide(v) => {
                let mut next = self.clone();
                next.procs[pid.0] = ProcStatus::Decided(v);
                next.moved |= 1 << pid.0;
                vec![next]
            }
            Action::Invoke(op) => self
                .object
                .apply_all(pid, &op)
                .into_iter()
                .map(|(object, resp)| {
                    let mut next = self.clone();
                    next.object = object;
                    next.procs[pid.0] = ProcStatus::Running(protocol.observe(pid, local, &resp));
                    next.moved |= 1 << pid.0;
                    next
                })
                .collect(),
        }
    }

    /// The configuration in which `pid` has crashed, or `None` if it is
    /// not running. Crashing is not a step: `moved` is unchanged.
    pub fn crash(&self, pid: Pid) -> Option<Self> {
        if !self.procs[pid.0].is_running() {
            return None;
        }
        let mut next = self.clone();
        next.procs[pid.0] = ProcStatus::Crashed;
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_model::ObjectSpec;
    use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

    /// Theorem 4's protocol for test-and-set, used as a fixture.
    struct TasConsensus;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Start,
        Done(Val),
    }

    impl ProcessAutomaton for TasConsensus {
        type Op = RmwOp;
        type Resp = <RmwRegister as ObjectSpec>::Resp;
        type State = St;

        fn start(&self, _pid: Pid) -> St {
            St::Start
        }

        fn action(&self, _pid: Pid, st: &St) -> Action<RmwOp> {
            match st {
                St::Start => Action::Invoke(RmwOp(RmwFn::TestAndSet)),
                St::Done(v) => Action::Decide(*v),
            }
        }

        fn observe(&self, pid: Pid, _st: &St, resp: &Val) -> St {
            if *resp == 0 {
                St::Done(pid.as_val())
            } else {
                St::Done(1 - pid.as_val())
            }
        }
    }

    fn initial() -> Config<RmwRegister, St> {
        Config::initial(&TasConsensus, RmwRegister::new(0), 2)
    }

    #[test]
    fn initial_config_shape() {
        let c = initial();
        assert_eq!(c.n(), 2);
        assert!(!c.is_terminal());
        assert_eq!(c.running().count(), 2);
        assert_eq!(c.moved, 0);
    }

    #[test]
    fn stepping_tracks_moved_mask() {
        let c = initial();
        let next = &c.step(&TasConsensus, Pid(1))[0];
        assert!(next.has_moved(Pid(1)));
        assert!(!next.has_moved(Pid(0)));
    }

    #[test]
    fn full_run_reaches_agreement() {
        let c = initial();
        // P0 wins the test-and-set, both decide 0.
        let c = c.step(&TasConsensus, Pid(0)).remove(0);
        let c = c.step(&TasConsensus, Pid(1)).remove(0);
        let c = c.step(&TasConsensus, Pid(0)).remove(0);
        let c = c.step(&TasConsensus, Pid(1)).remove(0);
        assert!(c.is_terminal());
        let d: Vec<Val> = c.decisions().collect();
        assert_eq!(d, vec![0, 0]);
    }

    #[test]
    fn crash_removes_process_without_moving_it() {
        let c = initial();
        let crashed = c.crash(Pid(0)).unwrap();
        assert!(!crashed.procs[0].is_running());
        assert!(!crashed.has_moved(Pid(0)));
        assert!(crashed.crash(Pid(0)).is_none(), "cannot crash twice");
    }

    #[test]
    fn stepping_decided_process_is_empty() {
        let c = initial();
        let c = c.step(&TasConsensus, Pid(0)).remove(0);
        let c = c.step(&TasConsensus, Pid(0)).remove(0); // decides
        assert!(c.step(&TasConsensus, Pid(0)).is_empty());
    }
}
