//! # waitfree-explorer
//!
//! The mechanical proof engine for the reproduction of Herlihy's PODC 1988
//! paper. Three capabilities:
//!
//! 1. **Exhaustive interleaving exploration** ([`check`]) — verifies the
//!    *positive* results (Theorems 4, 7, 9, 12, 15, 16, 19, 20): a given
//!    consensus protocol satisfies agreement, validity and wait-freedom
//!    over *every* schedule, including schedules in which processes crash.
//! 2. **Valency analysis** ([`valency`]) — computes the bivalent/univalent
//!    structure that drives the paper's impossibility proofs (the FLP-style
//!    argument of Theorem 2), locating *critical* configurations where the
//!    next step decides everything.
//! 3. **Bounded protocol synthesis** ([`synthesis`]) — enumerates *every*
//!    deterministic protocol up to a size bound over a given object type
//!    and certifies that none solves consensus, the executable analog of
//!    the *negative* results (Theorems 2, 6, 11, 22). A bounded search
//!    cannot replace the unbounded theorem; it reproduces its
//!    combinatorial core mechanically.
//!
//! Supporting modules: [`config`] (global configurations), [`impl_sim`]
//! (driving front-end implementations to produce concurrent histories for
//! the linearizability checker), and [`random`] (randomized schedules for
//! process counts where exhaustive search is infeasible).
//!
//! # Example: the queue consensus protocol of Theorem 9
//!
//! ```
//! use waitfree_explorer::check::{check_consensus, CheckSettings};
//! use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
//! use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
//!
//! /// Each process dequeues once; whoever gets the first item wins.
//! struct QueueConsensus;
//!
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! enum St { Start, Done(Val) }
//!
//! impl ProcessAutomaton for QueueConsensus {
//!     type Op = QueueOp;
//!     type Resp = QueueResp;
//!     type State = St;
//!     fn start(&self, _pid: Pid) -> St { St::Start }
//!     fn action(&self, _pid: Pid, st: &St) -> Action<QueueOp> {
//!         match st {
//!             St::Start => Action::Invoke(QueueOp::Deq),
//!             St::Done(v) => Action::Decide(*v),
//!         }
//!     }
//!     fn observe(&self, pid: Pid, _st: &St, resp: &QueueResp) -> St {
//!         // Queue holds [0, 1]; drawing 0 means "I won".
//!         match resp {
//!             QueueResp::Item(0) => St::Done(pid.as_val()),
//!             _ => St::Done(1 - pid.as_val()),
//!         }
//!     }
//! }
//!
//! let report = check_consensus(
//!     &QueueConsensus,
//!     &FifoQueue::from_items([0, 1]),
//!     2,
//!     &CheckSettings::default(),
//! );
//! assert!(report.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod config;
pub mod impl_sim;
pub mod random;
pub mod synthesis;
pub mod valency;
