//! The crash/stall stress harness: spawn `n` worker threads, let an
//! adversary (installed via [`failpoints`](crate::failpoints)) crash or
//! stall a subset mid-operation, and collect a classified outcome per
//! thread.
//!
//! The contract under test is the paper's wait-freedom (§3): *survivors
//! always finish in a bounded number of their own steps*, no matter which
//! subset of threads halts, and the completed operations still form a
//! linearizable history. Callers assert those properties on the returned
//! outcomes; the harness only guarantees that an injected
//! [`CrashSignal`] is told apart from a genuine test failure and that
//! stalled threads are released before joining (so a stress test can
//! never deadlock on a parked victim).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// Harness bookkeeping (the finished counter) is instrumentation-plane:
// `diag` atomics never become schedule points, so polling for a quorum
// does not perturb a scheduled run.
use waitfree_sched::atomic::diag::{AtomicUsize, Ordering};
use waitfree_sched::thread::JoinHandle;

use crate::failpoints::{self, CrashSignal};
use crate::rng::DetRng;

/// How one worker thread ended.
#[derive(Clone, Debug)]
pub enum Outcome<T> {
    /// The thread ran its whole closure.
    Completed(T),
    /// The thread was halted by an injected [`FaultAction::Crash`]
    /// (telling which site fired).
    ///
    /// [`FaultAction::Crash`]: crate::failpoints::FaultAction::Crash
    Crashed {
        /// The site that halted the thread.
        site: String,
    },
    /// The thread panicked for a real reason — a failed assertion inside
    /// the workload. Always a test failure.
    Panicked {
        /// The panic message, if it was a string.
        message: String,
    },
}

impl<T> Outcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            Outcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this thread was halted by the adversary.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        matches!(self, Outcome::Crashed { .. })
    }
}

/// Suppress the default panic-hook backtrace for injected crashes (they
/// are expected, one per victim); real panics keep the normal hook.
/// Idempotent.
pub fn silence_crash_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashSignal>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A group of spawned worker threads.
#[derive(Debug)]
pub struct StressGroup<T> {
    handles: Vec<JoinHandle<Outcome<T>>>,
    finished: Arc<AtomicUsize>,
}

/// Spawn `n` workers running `work(tid)`, each tagged with its harness
/// tid (for per-thread failpoint filters) and wrapped in `catch_unwind`.
pub fn spawn_workers<T, F>(n: usize, work: F) -> StressGroup<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    silence_crash_panics();
    let work = Arc::new(work);
    let finished = Arc::new(AtomicUsize::new(0));
    let handles = (0..n)
        .map(|tid| {
            let work = Arc::clone(&work);
            let finished = Arc::clone(&finished);
            waitfree_sched::thread::spawn(move || {
                failpoints::set_tid(tid);
                let result = catch_unwind(AssertUnwindSafe(|| work(tid)));
                finished.fetch_add(1, Ordering::SeqCst);
                match result {
                    Ok(v) => Outcome::Completed(v),
                    Err(payload) => match payload.downcast_ref::<CrashSignal>() {
                        Some(signal) => Outcome::Crashed { site: signal.site.clone() },
                        None => Outcome::Panicked {
                            message: payload
                                .downcast_ref::<&str>()
                                .map(ToString::to_string)
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic".to_string()),
                        },
                    },
                }
            })
        })
        .collect();
    StressGroup { finished, handles }
}

impl<T> StressGroup<T> {
    /// Block until at least `k` workers have finished (completed or
    /// crashed — stalled threads never count), or `timeout` elapses.
    /// Returns whether the quorum was reached. This is how a test asserts
    /// "survivors complete *while* the victims are still stalled/dead".
    #[must_use]
    pub fn await_finished(&self, k: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.finished.load(Ordering::SeqCst) < k {
            if Instant::now() >= deadline {
                return false;
            }
            waitfree_sched::thread::yield_now();
        }
        true
    }

    /// Number of workers that have finished so far.
    #[must_use]
    pub fn finished_count(&self) -> usize {
        self.finished.load(Ordering::SeqCst)
    }

    /// Release any stalled victims, join everyone, and return the
    /// per-thread outcomes (indexed by tid).
    #[must_use]
    pub fn finish(self) -> Vec<Outcome<T>> {
        failpoints::release_stalls();
        self.handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                // catch_unwind already fenced the workload; a join error
                // here would be a harness bug.
                Err(_) => Outcome::Panicked { message: "worker escaped catch_unwind".into() },
            })
            .collect()
    }
}

/// One planned victim: thread `tid` suffers `kind` at `site`, on that
/// thread's `after`-th arrival (1-based).
#[derive(Clone, Debug)]
pub struct Victim {
    /// The targeted harness thread.
    pub tid: usize,
    /// The failpoint site where the fault lands.
    pub site: String,
    /// Crash (halt forever) or stall (park until released).
    pub kind: crate::failpoints::FaultAction,
    /// Fire on the victim's `after`-th passage through the site.
    pub after: u64,
}

/// Deterministically pick an adversarial subset: `victims` distinct
/// threads out of `n`, each assigned a site from `sites` and a fault kind
/// (alternating crash/stall), at a small random depth into its operation
/// stream. Reproducible from `seed`.
///
/// # Panics
///
/// Panics if `victims >= n` (someone must survive) or `sites` is empty.
#[must_use]
pub fn plan_adversary(seed: u64, n: usize, sites: &[&str], victims: usize) -> Vec<Victim> {
    assert!(victims < n, "at least one survivor is required");
    assert!(!sites.is_empty(), "no sites to target");
    let mut rng = DetRng::new(seed);
    let mut tids: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut tids);
    tids.truncate(victims);
    tids.iter()
        .enumerate()
        .map(|(i, &tid)| Victim {
            tid,
            site: sites[rng.below(sites.len())].to_string(),
            kind: if i % 2 == 0 {
                crate::failpoints::FaultAction::Crash
            } else {
                crate::failpoints::FaultAction::Stall
            },
            after: 1 + rng.below(8) as u64,
        })
        .collect()
}

/// Arm every planned victim in the failpoint registry (one-shot configs).
/// A no-op without the `failpoints` feature.
pub fn install_adversary(plan: &[Victim]) {
    for v in plan {
        failpoints::configure(
            &v.site,
            crate::failpoints::FailpointConfig {
                action: v.kind.clone(),
                fire: crate::failpoints::Fire::Nth(v.after),
                tid: Some(v.tid),
                budget: Some(1),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_outcomes_carry_values() {
        let group = spawn_workers(4, |tid| tid * 10);
        assert!(group.await_finished(4, Duration::from_secs(10)));
        let values: Vec<usize> =
            group.finish().into_iter().map(|o| o.completed().unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
    }

    #[test]
    fn real_panics_are_not_mistaken_for_crashes() {
        let group = spawn_workers(2, |tid| {
            assert!(tid != 1, "thread one fails for real");
            tid
        });
        let outcomes = group.finish();
        assert!(matches!(outcomes[0], Outcome::Completed(0)));
        match &outcomes[1] {
            Outcome::Panicked { message } => assert!(message.contains("fails for real")),
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn adversary_plan_is_deterministic_and_leaves_survivors() {
        let sites = ["a", "b", "c"];
        let p1 = plan_adversary(5, 8, &sites, 5);
        let p2 = plan_adversary(5, 8, &sites, 5);
        assert_eq!(p1.len(), 5);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!((a.tid, &a.site, a.after), (b.tid, &b.site, b.after));
        }
        let mut tids: Vec<usize> = p1.iter().map(|v| v.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 5, "victims are distinct threads");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_crash_is_classified() {
        let _guard = failpoints::exclusive();
        failpoints::clear();
        failpoints::configure(
            "harness::t",
            crate::failpoints::FailpointConfig::once_for(
                crate::failpoints::FaultAction::Crash,
                1,
                1,
            ),
        );
        let group = spawn_workers(2, |_tid| {
            failpoints::hit("harness::t");
            7usize
        });
        let outcomes = group.finish();
        assert!(matches!(outcomes[0], Outcome::Completed(7)));
        match &outcomes[1] {
            Outcome::Crashed { site } => assert_eq!(site, "harness::t"),
            other => panic!("expected Crashed, got {other:?}"),
        }
        failpoints::clear();
    }
}
