//! Deterministic PRNG, re-exported from `waitfree-sched`.
//!
//! [`DetRng`] originated here and is used workspace-wide under the path
//! `waitfree_faults::rng::DetRng`; the implementation now lives in
//! [`waitfree_sched::rng`] (the scheduler's strategies need it, and the
//! faults crate sits *above* the scheduler so its yield/stall actions
//! can route through the thread facade). This shim keeps every existing
//! import path valid.

pub use waitfree_sched::rng::DetRng;
