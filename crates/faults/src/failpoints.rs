//! Labeled failpoints: named sites on hot paths where a test can inject
//! a fault — a yield, a bounded spin-delay, an indefinite stall, or a
//! crash (halt-failure, the paper's only fault class).
//!
//! Sites are compiled in by the [`failpoint!`](crate::failpoint) macro.
//! Without the `failpoints` cargo feature the macro expands to a call to
//! an inlined empty function: zero instructions on release hot paths.
//! With the feature on but no site configured, the cost is one relaxed
//! atomic load.
//!
//! All decisions are deterministic given [`set_seed`] and the order in
//! which threads reach the sites: probabilistic rules draw from a
//! per-config [`DetRng`](crate::rng::DetRng) seeded from the global seed
//! and the site name, and count-based rules ([`Fire::Nth`],
//! [`Fire::EveryNth`]) count only hits that pass the thread filter.
//!
//! The registry is global (failpoints are process-wide switchboards, as
//! in `libfail`/`fail-rs`); tests that configure sites must serialize on
//! [`exclusive`].
//!
//! # Known sites
//!
//! Sites are declared at their hot paths (the registry accepts any
//! name); the universal-object family, shared by the pointer and cell
//! paths so one adversary plan stresses either:
//!
//! * `universal::register` — on entry to the pointer path's dynamic
//!   `register`, before any registry slot is claimed (a crash here has
//!   published nothing);
//! * `universal::retire` — after `retire` marks the slot departed,
//!   before reclamation (a crash here leaves a retired, quiescent slot
//!   for the next registrant to recycle);
//! * `universal::announce` / `universal::announced` — around the
//!   announce-slot publication;
//! * `universal::collect` — before the combining scan that gathers all
//!   pending announced ops into one batch candidate (pointer path with
//!   combining enabled only; a crash here proves collected entries stay
//!   helpable, since the scan writes nothing shared);
//! * `universal::cas` / `universal::decided` — around each consensus
//!   decide;
//! * `universal::replay` — per applied operation during replay;
//! * `universal::checkpoint` — before a checkpoint image is built and
//!   proposed (pointer path with a checkpoint cadence only; a crash
//!   here has published nothing — the cadence simply re-fires on a
//!   later op, by any handle);
//! * `universal::reclaim` — inside the segment reclaimer, after the
//!   try-lock is won but before any segment is detached (a crash here
//!   unwinds through the lock's RAII guard, so reclamation stays
//!   available — the next invoke retries it).
//!
//! The sharded-store front-end (`waitfree-store`) layers three sites
//! over the universal-object family:
//!
//! * `store::route` — before every single-key op routes to its shard
//!   (a crash here has decided nothing anywhere);
//! * `store::multi` — before *each per-shard step* of a multi-key op,
//!   prepares and resolves alike, so `Fire::Nth` lands a crash between
//!   any two involved shards (mid-prepare or mid-resolve; the crashed
//!   multi's locks are released by the next conflicting op, which
//!   helps it to resolution from the replicated descriptor);
//! * `store::snapshot` — before each per-shard marker decide (a crash
//!   mid-snapshot leaves at most unclaimed early captures; the store
//!   keeps serving and later snapshots are unaffected).
//!
//! `consensus::*`, `faa_queue::*` and `lockfree::*` follow the same
//! convention at their respective hot paths.

#[cfg(feature = "failpoints")]
use std::collections::HashMap;
#[cfg(feature = "failpoints")]
use std::sync::{Mutex, OnceLock};

// Registry state is instrumentation-plane: `diag` atomics are raw std
// atomics in both scheduler modes, so arming a site never perturbs the
// schedules being explored.
#[cfg(feature = "failpoints")]
use waitfree_sched::atomic::diag::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

#[cfg(feature = "failpoints")]
use crate::rng::DetRng;

/// What happens when a configured site fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Yield via the thread facade (`waitfree_sched::thread::yield_now`):
    /// a real schedule point inside a scheduled run, an OS-level hint
    /// outside one.
    Yield,
    /// Busy-spin for this many `spin_loop` hints — models a stalled cache
    /// line or a preempted time slice without giving up determinism.
    SpinDelay(u32),
    /// Park until [`release_stalls`] (or [`clear`]) is called — models an
    /// arbitrarily long stall. The thread is *not* failed: it resumes and
    /// must still complete (wait-freedom is step-bounded, not time-bounded).
    Stall,
    /// Halt the thread at this point, mid-operation, by unwinding with a
    /// [`CrashSignal`] payload. The paper's halt-failure: the process
    /// simply stops taking steps; it never misbehaves.
    Crash,
}

/// When a configured site fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fire {
    /// Every hit that passes the thread filter.
    Always,
    /// Exactly the `k`-th passing hit (1-based), once.
    Nth(u64),
    /// Every `k`-th passing hit.
    EveryNth(u64),
    /// Each passing hit independently with probability `p`/1000, drawn
    /// from the site's deterministic RNG.
    PerMille(u32),
}

/// A full site configuration.
#[derive(Clone, Debug)]
pub struct FailpointConfig {
    /// The injected fault.
    pub action: FaultAction,
    /// The firing rule.
    pub fire: Fire,
    /// Only fire for this harness thread id (set via [`set_tid`]).
    /// `None` matches every thread.
    pub tid: Option<usize>,
    /// Maximum number of times this config may fire. `None` is unlimited.
    pub budget: Option<u64>,
}

impl FailpointConfig {
    /// A config that always fires `action` for every thread, unbounded.
    #[must_use]
    pub fn always(action: FaultAction) -> Self {
        FailpointConfig { action, fire: Fire::Always, tid: None, budget: None }
    }

    /// A one-shot config: fire `action` on the `k`-th passing hit of
    /// thread `tid`, then never again.
    #[must_use]
    pub fn once_for(action: FaultAction, tid: usize, k: u64) -> Self {
        FailpointConfig { action, fire: Fire::Nth(k), tid: Some(tid), budget: Some(1) }
    }
}

/// The panic payload of a [`FaultAction::Crash`]. Harnesses downcast the
/// `catch_unwind` payload to this type to distinguish an injected
/// halt-failure from a genuine assertion failure.
///
/// The type itself lives in `waitfree-sched` (the scheduler must
/// recognise injected crashes without depending on this crate); this
/// re-export keeps `waitfree_faults::failpoints::CrashSignal` the
/// canonical path for harness code.
pub use waitfree_sched::crash::CrashSignal;

thread_local! {
    static CURRENT_TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Tag the current OS thread with a harness thread id, used by per-thread
/// site filters and recorded in [`CrashSignal`].
pub fn set_tid(tid: usize) {
    CURRENT_TID.with(|c| c.set(Some(tid)));
}

/// The current thread's harness id, if tagged.
#[must_use]
pub fn current_tid() -> Option<usize> {
    CURRENT_TID.with(std::cell::Cell::get)
}

/// Serialize scenarios that configure the global registry: hold the
/// returned guard for the whole scenario. (Injected crashes unwind inside
/// *worker* threads, never through this guard, so it cannot poison.)
/// Available in both feature modes so callers compile unchanged; without
/// `failpoints` there is nothing to serialize but the guard still works.
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(feature = "failpoints")]
#[derive(Debug)]
struct ArmedConfig {
    cfg: FailpointConfig,
    /// Hits that passed this config's thread filter.
    matched: u64,
    fires: u64,
    rng: DetRng,
}

#[cfg(feature = "failpoints")]
#[derive(Debug, Default)]
struct SiteEntry {
    /// Total hits at this site (any thread) while configured.
    hits: u64,
    configs: Vec<ArmedConfig>,
}

#[cfg(feature = "failpoints")]
static ACTIVE_SITES: AtomicUsize = AtomicUsize::new(0);
#[cfg(feature = "failpoints")]
static STALLS_RELEASED: AtomicBool = AtomicBool::new(false);
#[cfg(feature = "failpoints")]
static STALLED_NOW: AtomicUsize = AtomicUsize::new(0);
#[cfg(feature = "failpoints")]
static SEED: AtomicU64 = AtomicU64::new(0xFA17);

#[cfg(feature = "failpoints")]
fn registry() -> &'static Mutex<HashMap<String, SiteEntry>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

#[cfg(feature = "failpoints")]
fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<String, SiteEntry>> {
    registry().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(feature = "failpoints")]
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Set the global fault seed. Per-config RNG streams are derived from it
/// and the site name, so a whole adversarial scenario replays from one
/// number. Call before [`configure`].
#[cfg(feature = "failpoints")]
pub fn set_seed(seed: u64) {
    SEED.store(seed, Ordering::SeqCst);
}

/// Arm `site` with `cfg`. Multiple configs may be armed on one site (for
/// per-thread adversaries); on a hit they are evaluated in arming order
/// and the first that fires wins.
#[cfg(feature = "failpoints")]
pub fn configure(site: &str, cfg: FailpointConfig) {
    if cfg.action == FaultAction::Stall {
        STALLS_RELEASED.store(false, Ordering::SeqCst);
    }
    let rng = DetRng::new(SEED.load(Ordering::SeqCst) ^ fnv1a(site));
    let mut reg = lock_registry();
    let entry = reg.entry(site.to_string()).or_default();
    if entry.configs.is_empty() {
        ACTIVE_SITES.fetch_add(1, Ordering::SeqCst);
    }
    entry.configs.push(ArmedConfig { cfg, matched: 0, fires: 0, rng });
}

/// Disarm every config on `site` (hit statistics are dropped too).
#[cfg(feature = "failpoints")]
pub fn remove(site: &str) {
    let mut reg = lock_registry();
    if let Some(entry) = reg.remove(site) {
        if !entry.configs.is_empty() {
            ACTIVE_SITES.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Disarm every site and release all stalled threads. Always leave a
/// scenario through this (the [`harness`](crate::harness) does it for you).
#[cfg(feature = "failpoints")]
pub fn clear() {
    let mut reg = lock_registry();
    let armed = reg.values().filter(|e| !e.configs.is_empty()).count();
    reg.clear();
    ACTIVE_SITES.fetch_sub(armed, Ordering::SeqCst);
    drop(reg);
    STALLS_RELEASED.store(true, Ordering::SeqCst);
}

/// Release every thread currently parked in a [`FaultAction::Stall`], and
/// let future stall fires pass through immediately.
#[cfg(feature = "failpoints")]
pub fn release_stalls() {
    STALLS_RELEASED.store(true, Ordering::SeqCst);
}

/// Number of threads currently parked in a stall.
#[cfg(feature = "failpoints")]
#[must_use]
pub fn stalled_count() -> usize {
    STALLED_NOW.load(Ordering::SeqCst)
}

/// Total hits recorded at `site` while it was configured.
#[cfg(feature = "failpoints")]
#[must_use]
pub fn hits(site: &str) -> u64 {
    lock_registry().get(site).map_or(0, |e| e.hits)
}

/// Total fires across all configs of `site`.
#[cfg(feature = "failpoints")]
#[must_use]
pub fn fires(site: &str) -> u64 {
    lock_registry().get(site).map_or(0, |e| e.configs.iter().map(|c| c.fires).sum())
}

/// The instrumented-code entry point behind [`failpoint!`](crate::failpoint).
/// Prefer the macro in instrumented code.
#[cfg(feature = "failpoints")]
pub fn hit(site: &str) {
    // ordering: Relaxed [no-edge] — a pure fast-path counter check; a stale zero
    // only skips a site that was armed concurrently with the hit, which
    // the registry lock below would serialize anyway.
    if ACTIVE_SITES.load(Ordering::Relaxed) == 0 {
        return;
    }
    let action = {
        let mut reg = lock_registry();
        let Some(entry) = reg.get_mut(site) else { return };
        entry.hits += 1;
        let tid = current_tid();
        let mut chosen: Option<FaultAction> = None;
        for armed in &mut entry.configs {
            if let Some(want) = armed.cfg.tid {
                if tid != Some(want) {
                    continue;
                }
            }
            armed.matched += 1;
            let fire = match armed.cfg.fire {
                Fire::Always => true,
                Fire::Nth(k) => armed.matched == k,
                Fire::EveryNth(k) => k > 0 && armed.matched % k == 0,
                Fire::PerMille(p) => armed.rng.per_mille(p),
            };
            if !fire || armed.cfg.budget.is_some_and(|b| armed.fires >= b) {
                continue;
            }
            armed.fires += 1;
            chosen = Some(armed.cfg.action.clone());
            break;
        }
        match chosen {
            Some(a) => a,
            None => return,
        }
        // Registry lock drops here: actions run outside it, so a Crash
        // unwind can never poison the registry.
    };
    perform(site, action);
}

#[cfg(feature = "failpoints")]
fn perform(site: &str, action: FaultAction) {
    match action {
        // The facade's yield_now is a real schedule point inside a
        // scheduled run and `std::thread::yield_now` outside one — no
        // hook indirection needed now that this crate sits above the
        // scheduler.
        FaultAction::Yield => waitfree_sched::thread::yield_now(),
        FaultAction::SpinDelay(n) => {
            for _ in 0..n {
                std::hint::spin_loop();
            }
        }
        FaultAction::Stall => {
            STALLED_NOW.fetch_add(1, Ordering::SeqCst);
            while !STALLS_RELEASED.load(Ordering::SeqCst) {
                waitfree_sched::thread::park_timeout(std::time::Duration::from_micros(50));
            }
            STALLED_NOW.fetch_sub(1, Ordering::SeqCst);
        }
        FaultAction::Crash => {
            std::panic::panic_any(CrashSignal { site: site.to_string(), tid: current_tid() });
        }
    }
}

// ---------------------------------------------------------------------------
// Feature-off stubs: same API, no state, no cost.
// ---------------------------------------------------------------------------

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) {}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn set_seed(_seed: u64) {}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn configure(_site: &str, _cfg: FailpointConfig) {}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn remove(_site: &str) {}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn clear() {}

/// No-op without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
pub fn release_stalls() {}

/// Always zero without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[must_use]
pub fn stalled_count() -> usize {
    0
}

/// Always zero without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[must_use]
pub fn hits(_site: &str) -> u64 {
    0
}

/// Always zero without the `failpoints` feature.
#[cfg(not(feature = "failpoints"))]
#[must_use]
pub fn fires(_site: &str) -> u64 {
    0
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unconfigured_site_is_inert() {
        let _guard = exclusive();
        clear();
        hit("nothing::here");
        assert_eq!(hits("nothing::here"), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _guard = exclusive();
        clear();
        configure(
            "t::nth",
            FailpointConfig { action: FaultAction::Yield, fire: Fire::Nth(3), tid: None, budget: None },
        );
        for _ in 0..10 {
            hit("t::nth");
        }
        assert_eq!(hits("t::nth"), 10);
        assert_eq!(fires("t::nth"), 1);
        clear();
    }

    #[test]
    fn per_mille_is_deterministic_under_seed() {
        let _guard = exclusive();
        let run = || {
            clear();
            set_seed(99);
            configure(
                "t::pm",
                FailpointConfig {
                    action: FaultAction::SpinDelay(1),
                    fire: Fire::PerMille(300),
                    tid: None,
                    budget: None,
                },
            );
            for _ in 0..200 {
                hit("t::pm");
            }
            let f = fires("t::pm");
            clear();
            f
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same fire pattern");
        assert!(a > 20 && a < 120, "~30% of 200, got {a}");
    }

    #[test]
    fn tid_filter_counts_only_matching_hits() {
        let _guard = exclusive();
        clear();
        configure("t::tid", FailpointConfig::once_for(FaultAction::Yield, 7, 2));
        set_tid(3);
        for _ in 0..5 {
            hit("t::tid");
        }
        assert_eq!(fires("t::tid"), 0, "wrong thread never fires");
        set_tid(7);
        hit("t::tid");
        assert_eq!(fires("t::tid"), 0, "first matching hit is not the 2nd");
        hit("t::tid");
        assert_eq!(fires("t::tid"), 1, "second matching hit fires");
        hit("t::tid");
        assert_eq!(fires("t::tid"), 1, "budget of one");
        clear();
    }

    #[test]
    fn crash_unwinds_with_signal_payload() {
        let _guard = exclusive();
        clear();
        configure("t::crash", FailpointConfig::always(FaultAction::Crash));
        set_tid(5);
        let result = std::panic::catch_unwind(|| hit("t::crash"));
        let payload = result.expect_err("crash must unwind");
        let signal = payload.downcast_ref::<CrashSignal>().expect("crash payload");
        assert_eq!(signal.site, "t::crash");
        assert_eq!(signal.tid, Some(5));
        clear();
    }

    #[test]
    fn stall_parks_until_released() {
        let _guard = exclusive();
        clear();
        configure("t::stall", FailpointConfig::always(FaultAction::Stall));
        let worker = waitfree_sched::thread::spawn(|| hit("t::stall"));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while stalled_count() == 0 && std::time::Instant::now() < deadline {
            waitfree_sched::thread::yield_now();
        }
        assert_eq!(stalled_count(), 1, "worker parked at the site");
        release_stalls();
        worker.join().expect("stalled thread resumes, not fails");
        assert_eq!(stalled_count(), 0);
        clear();
    }
}
