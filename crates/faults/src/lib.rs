//! # waitfree-faults
//!
//! Fault injection for the hardware layer: the machinery that turns the
//! paper's central claim — wait-freedom tolerates any number of
//! halt-failures (§3) — from a model-checked statement (see
//! `waitfree-explorer`) into an empirically validated property of the
//! shipped `waitfree-sync` library.
//!
//! Three pieces:
//!
//! * [`failpoints`] — labeled sites compiled into hot paths via
//!   [`failpoint!`]; a test arms a site with a [`FaultAction`]
//!   (yield, spin-delay, stall, crash) under a deterministic firing rule.
//!   Without the `failpoints` cargo feature every site is an inlined
//!   empty function: zero cost in production builds.
//! * [`harness`] — spawns real threads, classifies injected crashes
//!   apart from genuine panics, releases stalled victims before joining,
//!   and plans deterministic adversaries ("crash thread 3 at its 2nd CAS").
//! * [`rng`] — the workspace's seeded PRNG ([`rng::DetRng`]), also used
//!   by the explorer's randomized schedules and the property tests (the
//!   repository builds fully offline, with no external crates). The
//!   implementation lives in `waitfree_sched::rng` — this crate sits
//!   above the scheduler so injected yields and stalls route through the
//!   thread facade — and is re-exported here under its original path.
//!
//! [`FaultAction`]: failpoints::FaultAction

#![warn(missing_docs)]

pub mod failpoints;
pub mod harness;
pub mod rng;

/// Mark a failpoint site. `site` should be a `&str` literal, namespaced
/// like `"universal::cas"`.
///
/// With the `failpoints` feature off this expands to a call to an
/// `#[inline(always)]` empty function — no registry, no atomics, nothing.
///
/// ```
/// waitfree_faults::failpoint!("docs::example");
/// ```
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::failpoints::hit($site)
    };
}
