//! Static ordering-audit lint over the workspace's Rust sources — the
//! `wf-lint` binary and the line scanner behind it.
//!
//! Four rules, each encoding an invariant the rest of the workspace
//! relies on but the compiler cannot check:
//!
//! 1. **Ordering audit** — every atomic operation that names a
//!    non-`SeqCst` ordering (`Relaxed`, `Acquire`, `Release`, `AcqRel`)
//!    must carry an adjacent `// ordering:` comment justifying the
//!    happens-before edge it provides (or deliberately gives up). The
//!    dynamic complement is `waitfree_sched::hb`, which replays recorded
//!    schedules and checks that the *declared* orderings really do
//!    justify every observed value; this rule makes sure each declared
//!    ordering also has a written-down argument a reviewer can audit.
//! 2. **Orphaned audit** — the converse: a comment *formatted as* an
//!    audit (its text starts with `ordering:`) must sit adjacent to a
//!    statement that actually names an `Ordering::`. When a refactor
//!    deletes or moves an atomic and leaves its justification behind,
//!    the stale prose would otherwise keep "covering" whatever code
//!    drifts into its place — a reviewer trusts audit comments precisely
//!    because this rule makes them fail CI when they dangle.
//! 3. **Facade bypass** — no `std::sync::atomic`, `core::sync::atomic`
//!    or `std::thread` in code outside `crates/sched/src/`. All atomics
//!    and threads must go through the `waitfree_sched` facade
//!    (including its `atomic::diag` module for instrumentation-plane
//!    state), or the deterministic scheduler silently loses schedule
//!    points and the recorded traces lie. The `core::` path matters for
//!    arena/epoch-style code: `std::sync::atomic` is itself a re-export
//!    of `core::sync::atomic`, so reaching for the `core` spelling is
//!    the same bypass wearing a no-`std` costume.
//! 4. **Bench timing** — inside `crates/bench/`, `Instant::now` is
//!    allowed only in `src/timing.rs`. Timed regions must flow through
//!    the timing harness so warm-up, batching and medians stay uniform;
//!    a stray `Instant::now` in a bench body is usually an accounting
//!    bug (it was, once — see the PR that rebuilt the bench accounting).
//!
//! The scanner is hand-rolled (no `syn`, no regex crate) because the
//! workspace is deliberately dependency-free. It splits each physical
//! line into a *code* part — with string-literal contents blanked — and
//! a *comment* part, which is exact enough for the three rules above:
//! rule patterns match only real code, and audit comments are read from
//! the comment channel.
//!
//! # What counts as "adjacent" for rule 1
//!
//! The `ordering:` comment may sit on any line of the statement that
//! names the ordering (trailing comments included), or in the
//! comment block immediately above the statement (attributes such as
//! `#[cfg(...)]` may intervene). A statement's first line is found by
//! walking upward while the previous line is code that does not end in
//! `;`, `{` or `}` — so a multi-line `compare_exchange(...)` call is
//! covered by one comment above the call, and a CAS's success and
//! failure orderings share that comment.
//!
//! # Scope
//!
//! Rules 1 and 2 skip test code (`tests/`, `benches/`, `examples/`
//! directories and `#[cfg(test)]` modules): tests pin orderings for
//! scenarios, they do not promise edges. Rules 1–3 skip
//! `crates/sched/src/` wholesale — the facade and the happens-before
//! checker manipulate `Ordering` values as *data* and own the one
//! sanctioned `std` boundary. Rule 3 applies everywhere else,
//! including tests: a test on raw `std::thread` cannot be replayed
//! under the scheduler. Rule 2 recognizes an audit comment only when
//! its text *starts with* `ordering:` — doc comments that merely
//! mention the `// ordering:` convention (their comment text starts
//! with `!` or `/`) are prose, not dangling audits.

use std::fmt;

pub mod contract;

// ---------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------

/// Which lint rule produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Non-`SeqCst` ordering without an adjacent `// ordering:` comment.
    OrderingAudit,
    /// An `// ordering:` audit comment adjacent to no atomic operation.
    OrphanedAudit,
    /// Raw `std::sync::atomic` / `core::sync::atomic` / `std::thread`
    /// outside the facade.
    FacadeBypass,
    /// `Instant::now` inside `crates/bench/` outside `src/timing.rs`.
    BenchTiming,
    /// Malformed contract group inside an `// ordering:` comment
    /// (bad label, empty `pairs:`, unknown key).
    ContractSyntax,
    /// An audited atomic statement whose comment lacks the contract
    /// group its orderings require (`[site: …]` / `[pairs: …]` /
    /// `[no-edge]`).
    ContractAnnotation,
    /// A contract group that contradicts the statement's orderings
    /// (e.g. `[site: …]` on an acquire-only statement).
    ContractDirection,
    /// The same `site:` label declared by two different statements.
    DuplicateLabel,
    /// A `pairs:` reference naming a label no site declares.
    UnresolvedPair,
    /// A declared pair whose release and acquire sides touch different
    /// atomic fields.
    PairField,
    /// A `loop`/`while` in `crates/sync`/`crates/store` non-test code
    /// without an adjacent `// progress:` annotation.
    ProgressAnnotation,
    /// A `// progress:` annotation adjacent to no `loop`/`while`.
    OrphanedProgress,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rule::OrderingAudit => "ordering-audit",
            Rule::OrphanedAudit => "orphaned-audit",
            Rule::FacadeBypass => "facade-bypass",
            Rule::BenchTiming => "bench-timing",
            Rule::ContractSyntax => "contract-syntax",
            Rule::ContractAnnotation => "contract-annotation",
            Rule::ContractDirection => "contract-direction",
            Rule::DuplicateLabel => "duplicate-label",
            Rule::UnresolvedPair => "unresolved-pair",
            Rule::PairField => "pair-field",
            Rule::ProgressAnnotation => "progress-annotation",
            Rule::OrphanedProgress => "orphaned-progress",
        })
    }
}

/// One lint finding: a rule violated at a line of a file.
#[derive(Clone, Debug)]
pub struct Finding {
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.msg)
    }
}

// ---------------------------------------------------------------------
// Source splitting: code vs comment, strings blanked
// ---------------------------------------------------------------------

/// One physical line, split into its code part (string-literal contents
/// replaced by spaces) and its comment part (text of `//` and `/* */`
/// comments on that line, delimiters stripped).
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code on this line with string contents blanked.
    pub code: String,
    /// Comment text on this line.
    pub comment: String,
}

/// Split `src` into [`Line`]s, classifying every character as code,
/// comment or string content. Handles nested block comments, string
/// escapes, raw strings (`r"…"`, `r#"…"#`), byte strings and char
/// literals vs lifetimes.
#[must_use]
pub fn split_lines(src: &str) -> Vec<Line> {
    let b: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut i = 0;
    // Nesting depth of `/* */` (Rust block comments nest).
    let mut block = 0usize;

    macro_rules! newline {
        () => {
            lines.push(std::mem::take(&mut cur))
        };
    }

    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            newline!();
            i += 1;
            continue;
        }
        if block > 0 {
            if c == '/' && b.get(i + 1) == Some(&'*') {
                block += 1;
                i += 2;
            } else if c == '*' && b.get(i + 1) == Some(&'/') {
                block -= 1;
                i += 2;
            } else {
                cur.comment.push(c);
                i += 1;
            }
            continue;
        }
        match c {
            '/' if b.get(i + 1) == Some(&'/') => {
                i += 2;
                while i < b.len() && b[i] != '\n' {
                    cur.comment.push(b[i]);
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                block = 1;
                i += 2;
            }
            '"' => {
                cur.code.push('"');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => {
                            // Escape: consume the next char too, unless it
                            // is a line-continuation newline.
                            if b.get(i + 1) == Some(&'\n') {
                                i += 1;
                            } else {
                                cur.code.push(' ');
                                i += 2;
                            }
                        }
                        '"' => {
                            cur.code.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            newline!();
                            i += 1;
                        }
                        _ => {
                            cur.code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' if !prev_is_ident(&b, i)
                && raw_string_hashes(&b, i).is_some() =>
            {
                let hashes = raw_string_hashes(&b, i).unwrap();
                cur.code.push('r');
                i += 1 + hashes + 1; // r, #*, opening quote
                cur.code.push('"');
                // Scan for `"` followed by `hashes` `#`s.
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == '\n' {
                        newline!();
                        i += 1;
                        continue;
                    }
                    if b[i] == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
                        cur.code.push('"');
                        i += 1 + hashes;
                        break;
                    }
                    cur.code.push(' ');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // closed by a quote; a char literal closes within a few
                // chars (or starts with an escape).
                if b.get(i + 1) == Some(&'\\') {
                    cur.code.push('\'');
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        cur.code.push(' ');
                        i += 1;
                    }
                    cur.code.push('\'');
                    i += 1;
                } else if b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\'') {
                    cur.code.push_str("' '");
                    i += 3;
                } else {
                    // Lifetime (or stray quote): keep as code.
                    cur.code.push('\'');
                    i += 1;
                }
            }
            _ => {
                cur.code.push(c);
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Whether the char before `i` continues an identifier (so `b[i] == 'r'`
/// is the tail of a name like `var`, not a raw-string prefix).
fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// If `b[i..]` starts a raw string `r#*"`, the number of `#`s.
fn raw_string_hashes(b: &[char], i: usize) -> Option<usize> {
    debug_assert_eq!(b[i], 'r');
    let mut k = i + 1;
    let mut hashes = 0;
    while b.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    (b.get(k) == Some(&'"')).then_some(hashes)
}

// ---------------------------------------------------------------------
// cfg(test) block detection
// ---------------------------------------------------------------------

/// Mark the lines covered by `#[cfg(test)]` (or `#[cfg(all(test, …))]`)
/// items, by brace-matching from the attribute's first `{`.
#[must_use]
pub fn cfg_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut excluded = vec![false; lines.len()];
    let mut l = 0;
    while l < lines.len() {
        let code = &lines[l].code;
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            // Find the first `{` at or after the attribute and match it.
            let mut depth = 0i32;
            let mut opened = false;
            let mut m = l;
            'outer: while m < lines.len() {
                excluded[m] = true;
                for ch in lines[m].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth -= 1;
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                m += 1;
            }
            l = m + 1;
        } else {
            l += 1;
        }
    }
    excluded
}

// ---------------------------------------------------------------------
// The rules
// ---------------------------------------------------------------------

/// Where a file sits in the workspace, for rule scoping. Derived from
/// the `/`-separated path relative to the workspace root.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Scope<'a> {
    pub(crate) rel: &'a str,
    /// Inside the facade implementation (`crates/sched/src/`).
    pub(crate) sched_src: bool,
    /// In a `tests/`, `benches/` or `examples/` directory.
    pub(crate) test_dir: bool,
    /// Inside `crates/bench/`.
    pub(crate) bench_crate: bool,
    /// Subject to the progress lint (`crates/sync/src/`,
    /// `crates/store/src/`).
    pub(crate) progress_crate: bool,
}

impl<'a> Scope<'a> {
    pub(crate) fn of(rel: &'a str) -> Scope<'a> {
        let in_dir = |d: &str| {
            rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"))
        };
        Scope {
            rel,
            sched_src: rel.starts_with("crates/sched/src/"),
            test_dir: in_dir("tests") || in_dir("benches") || in_dir("examples"),
            bench_crate: rel.starts_with("crates/bench/"),
            progress_crate: rel.starts_with("crates/sync/src/")
                || rel.starts_with("crates/store/src/"),
        }
    }

    /// Whether the ordering-audit family of rules (1, 2 and the
    /// contract checks) applies to this file at all.
    pub(crate) fn audited(&self) -> bool {
        !self.sched_src && !self.test_dir
    }
}

const WEAK_ORDERINGS: [&str; 4] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// Lint one file's source. `rel_path` is `/`-separated and relative to
/// the workspace root (e.g. `crates/sync/src/universal.rs`).
///
/// This covers every *single-file* rule, including the per-statement
/// contract checks (syntax, required groups, direction) and the
/// progress lint. The cross-file half of the contract — duplicate
/// labels, unresolved `pairs:` references, per-pair field agreement —
/// lives in [`contract::extract_contract`], which `wf-lint` runs over
/// the whole workspace after the per-file pass.
#[must_use]
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let scope = Scope::of(rel_path);
    let lines = split_lines(src);
    let mut findings = Vec::new();

    facade_bypass(&scope, &lines, &mut findings);
    bench_timing(&scope, &lines, &mut findings);
    ordering_audit(&scope, &lines, &mut findings);
    orphaned_audit(&scope, &lines, &mut findings);
    contract::annotation_lint(&scope, &lines, &mut findings);
    progress_lint(&scope, &lines, &mut findings);
    orphaned_progress(&scope, &lines, &mut findings);

    findings.sort_by_key(|f| f.line);
    findings
}

fn facade_bypass(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if scope.sched_src {
        return;
    }
    for (l, line) in lines.iter().enumerate() {
        for pat in ["std::sync::atomic", "core::sync::atomic", "std::thread"] {
            if line.code.contains(pat) {
                out.push(Finding {
                    line: l + 1,
                    rule: Rule::FacadeBypass,
                    msg: format!(
                        "raw `{pat}` bypasses the waitfree_sched facade; use \
                         `waitfree_sched::atomic` / `waitfree_sched::thread` \
                         (or `atomic::diag` for instrumentation-plane state)"
                    ),
                });
            }
        }
    }
}

fn bench_timing(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if !scope.bench_crate || scope.rel == "crates/bench/src/timing.rs" {
        return;
    }
    for (l, line) in lines.iter().enumerate() {
        if line.code.contains("Instant::now") {
            out.push(Finding {
                line: l + 1,
                rule: Rule::BenchTiming,
                msg: "`Instant::now` outside src/timing.rs: route timed regions \
                      through waitfree_bench::timing so warm-up, batching and \
                      medians stay uniform"
                    .into(),
            });
        }
    }
}

fn ordering_audit(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if scope.sched_src || scope.test_dir {
        return;
    }
    let excluded = cfg_test_lines(lines);
    for (l, line) in lines.iter().enumerate() {
        if excluded[l] {
            continue;
        }
        let weak: Vec<&str> = WEAK_ORDERINGS
            .iter()
            .copied()
            .filter(|o| line.code.contains(o))
            .collect();
        if weak.is_empty() {
            continue;
        }
        if !statement_has_audit(lines, l) {
            out.push(Finding {
                line: l + 1,
                rule: Rule::OrderingAudit,
                msg: format!(
                    "{} without an adjacent `// ordering:` comment justifying \
                     the happens-before edge",
                    weak.join(" / ")
                ),
            });
        }
    }
}

/// The `[start, end]` line range of the statement containing line `l`.
///
/// First line: walk up while the previous line is code that does not
/// close a statement. A trailing `{` does *not* close one here —
/// `if x.compare_exchange(… {` spreads a single condition over an
/// opener line, and an audit comment sits above the whole construct.
/// Last line: walk down to the first line ending in `;`, `{` or `}`.
pub(crate) fn statement_range(lines: &[Line], l: usize) -> (usize, usize) {
    let ends_stmt = |code: &str| {
        matches!(code.trim_end().chars().last(), Some(';' | '{' | '}'))
    };
    let closes_above = |code: &str| {
        matches!(code.trim_end().chars().last(), Some(';' | '}'))
    };
    let mut s = l;
    while s > 0 {
        let prev = &lines[s - 1];
        if prev.code.trim().is_empty() || closes_above(&prev.code) {
            break;
        }
        s -= 1;
    }
    let mut e = l;
    while e + 1 < lines.len() && !ends_stmt(&lines[e].code) {
        // A comment-only line splits a multi-line statement into
        // fragments, symmetric with the upward walk: each fragment
        // owns the comment block directly above it (the Debug-chain
        // idiom, where one long method chain holds several annotated
        // atomic loads).
        if lines[e + 1].code.trim().is_empty() {
            break;
        }
        e += 1;
    }
    (s, e)
}

/// Whether the statement containing line `l` carries an `ordering:`
/// audit comment — on any of its own lines, or in the comment block
/// immediately above its first line.
fn statement_has_audit(lines: &[Line], l: usize) -> bool {
    statement_has_marker(lines, l, "ordering:")
}

/// [`statement_has_audit`] for an arbitrary marker (`ordering:`,
/// `progress:`): the same adjacency convention serves both comment
/// families.
pub(crate) fn statement_has_marker(lines: &[Line], l: usize, marker: &str) -> bool {
    let (s, e) = statement_range(lines, l);
    if lines[s..=e].iter().any(|ln| ln.comment.contains(marker)) {
        return true;
    }
    // Comment block immediately above the statement.
    let mut a = s;
    while a > 0 {
        let above = &lines[a - 1];
        if above.code.trim().is_empty() && !above.comment.trim().is_empty() {
            if above.comment.contains(marker) {
                return true;
            }
            a -= 1;
        } else {
            break;
        }
    }
    false
}

/// The comment text adjacent to the statement containing line `l`:
/// the comment block immediately above the statement (top to bottom),
/// then the statement's own lines' comments — one string per comment
/// line. Contract groups are parsed out of these.
pub(crate) fn adjacent_comment_lines(lines: &[Line], l: usize) -> Vec<String> {
    let (s, e) = statement_range(lines, l);
    let mut a = s;
    while a > 0 {
        let above = &lines[a - 1];
        if above.code.trim().is_empty() && !above.comment.trim().is_empty() {
            a -= 1;
        } else {
            break;
        }
    }
    lines[a..s]
        .iter()
        .chain(lines[s..=e].iter())
        .filter(|ln| !ln.comment.trim().is_empty())
        .map(|ln| ln.comment.clone())
        .collect()
}

/// Whether `code` contains `word` as a standalone keyword (not as part
/// of a longer identifier such as `loop_count`).
pub(crate) fn has_keyword(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Whether this line of code opens a `loop` or `while` (the constructs
/// the progress lint covers; `for` iterates a finite iterator and is
/// structurally bounded).
fn opens_loop(code: &str) -> bool {
    has_keyword(code, "loop") || has_keyword(code, "while")
}

/// Rule: every `loop`/`while` in `crates/sync`/`crates/store` non-test
/// code carries an adjacent `// progress:` annotation classifying its
/// termination argument (`wait-free: …` / `lock-free: …` /
/// `bounded: …`), with the same statement-aware adjacency as the
/// ordering audit.
fn progress_lint(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if !scope.progress_crate || scope.test_dir {
        return;
    }
    let excluded = cfg_test_lines(lines);
    let mut seen_stmt = usize::MAX;
    for (l, line) in lines.iter().enumerate() {
        if excluded[l] || !opens_loop(&line.code) {
            continue;
        }
        // One finding per loop header, even when a multi-line `while`
        // condition mentions the keyword's statement across lines.
        let (s, _) = statement_range(lines, l);
        if s == seen_stmt {
            continue;
        }
        seen_stmt = s;
        if !statement_has_marker(lines, l, "progress:") {
            out.push(Finding {
                line: l + 1,
                rule: Rule::ProgressAnnotation,
                msg: "`loop`/`while` without an adjacent `// progress:` \
                      annotation (`wait-free: …` / `lock-free: …` / \
                      `bounded: …`) stating why it terminates"
                    .into(),
            });
            continue;
        }
        // The annotation must classify the loop, not merely exist.
        let classified = adjacent_comment_lines(lines, l).iter().any(|c| {
            c.find("progress:").is_some_and(|at| {
                let rest = c[at + "progress:".len()..].trim_start();
                ["wait-free", "lock-free", "bounded"].iter().any(|k| rest.starts_with(k))
            })
        });
        if !classified {
            out.push(Finding {
                line: l + 1,
                rule: Rule::ProgressAnnotation,
                msg: "`// progress:` annotation must start with one of \
                      `wait-free:`, `lock-free:` or `bounded:`"
                    .into(),
            });
        }
    }
}

/// Rule: a comment formatted as a progress annotation must sit adjacent
/// to a `loop`/`while` — the mirror of the orphaned-audit rule, so a
/// refactor that deletes a loop cannot leave its termination argument
/// covering unrelated code.
fn orphaned_progress(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if !scope.progress_crate || scope.test_dir {
        return;
    }
    let excluded = cfg_test_lines(lines);
    for (l, line) in lines.iter().enumerate() {
        if excluded[l] || !line.comment.trim_start().starts_with("progress:") {
            continue;
        }
        // Annotating a `for` loop is voluntary (the lint does not
        // require it) but legal — it must not read as an orphan.
        let covered = marker_covers(lines, l, |code| opens_loop(code) || has_keyword(code, "for"));
        if !covered {
            out.push(Finding {
                line: l + 1,
                rule: Rule::OrphanedProgress,
                msg: "`// progress:` annotation adjacent to no `loop`/`while` — \
                      the loop it classified was moved or deleted; move or \
                      delete the annotation with it"
                    .into(),
            });
        }
    }
}

/// Whether the marker comment at line `l` (trailing or standalone) is
/// adjacent to a statement satisfying `pred` — the shared coverage walk
/// behind the two orphan rules.
fn marker_covers(lines: &[Line], l: usize, pred: impl Fn(&str) -> bool) -> bool {
    if !lines[l].code.trim().is_empty() {
        // Trailing marker: its own statement must satisfy the predicate.
        let (s, e) = statement_range(lines, l);
        return lines[s..=e].iter().any(|ln| pred(&ln.code));
    }
    // Standalone marker (possibly a multi-line comment block, possibly
    // with attributes between it and the code): the statement starting
    // at the next code line must satisfy it. A blank line below breaks
    // adjacency.
    let mut n = l + 1;
    while n < lines.len()
        && ((lines[n].code.trim().is_empty() && !lines[n].comment.trim().is_empty())
            || lines[n].code.trim_start().starts_with("#["))
    {
        n += 1;
    }
    n < lines.len() && !lines[n].code.trim().is_empty() && {
        // Extend downward through `{` openers, mirroring the upward
        // walk in `statement_range`.
        let continues = |code: &str| {
            !matches!(code.trim_end().chars().last(), Some(';' | '}'))
        };
        let mut e = n;
        while e + 1 < lines.len() && continues(&lines[e].code) {
            e += 1;
        }
        lines[n..=e].iter().any(|ln| pred(&ln.code))
    }
}

fn orphaned_audit(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if scope.sched_src || scope.test_dir {
        return;
    }
    let excluded = cfg_test_lines(lines);
    for (l, line) in lines.iter().enumerate() {
        // Only comments *formatted as* audits: text starting with
        // `ordering:`. Doc comments (`//!`, `///`) quoting the
        // convention yield comment text starting with `!` or `/`.
        if excluded[l] || !line.comment.trim_start().starts_with("ordering:") {
            continue;
        }
        // Trailing audits must share a statement naming an ordering;
        // standalone audits (with attributes allowed in between, and the
        // downward walk extending through `{` openers — an audit above
        // `if unsafe {` covers the CAS inside the braces) must sit on
        // one. A blank line below breaks adjacency, exactly as it does
        // for the ordering-audit rule above.
        let covered = marker_covers(lines, l, |code| code.contains("Ordering::"));
        if !covered {
            out.push(Finding {
                line: l + 1,
                rule: Rule::OrphanedAudit,
                msg: "`// ordering:` audit comment adjacent to no atomic operation — \
                      the op it justified was moved or deleted; move or delete the \
                      audit with it"
                    .into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(rel: &str, src: &str) -> Vec<Finding> {
        lint_source(rel, src)
    }

    // -- scanner ------------------------------------------------------

    #[test]
    fn strings_and_comments_are_separated() {
        let lines = split_lines(
            "let x = \"std::thread\"; // std::thread in a comment\nload(Ordering::Relaxed);\n",
        );
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("std::thread"), "{:?}", lines[0]);
        assert!(lines[0].comment.contains("std::thread"));
        assert!(lines[1].code.contains("Ordering::Relaxed"));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let lines = split_lines(
            "/* outer /* inner */ still comment */ code();\nlet r = r#\"Ordering::Relaxed\"#;\n",
        );
        assert!(lines[0].code.contains("code()"));
        assert!(lines[0].comment.contains("still comment"));
        assert!(!lines[1].code.contains("Ordering::Relaxed"));
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_scanner() {
        let lines = split_lines(
            "fn f<'a>(x: &'a str) -> char { let q = '\"'; let n = '\\n'; q }\nOrdering::Relaxed\n",
        );
        assert!(lines[0].code.contains("fn f<'a>"));
        // The quote char literal must not open a string that swallows
        // the next line.
        assert!(lines[1].code.contains("Ordering::Relaxed"));
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let lines = split_lines("let s = \"a\nstd::thread\nb\";\nafter();\n");
        assert_eq!(lines.len(), 4);
        assert!(!lines[1].code.contains("std::thread"));
        assert!(lines[3].code.contains("after()"));
    }

    // -- rule 1: ordering audit --------------------------------------

    #[test]
    fn uncommented_weak_ordering_is_flagged() {
        let f = find(
            "crates/sync/src/x.rs",
            "fn f(a: &AtomicUsize) {\n    a.load(Ordering::Acquire);\n}\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::OrderingAudit);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn trailing_and_preceding_audit_comments_cover_the_op() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   a.load(Ordering::Acquire); // ordering: Acquire [pairs: x.pub]\n\
                   \x20   // ordering: Release [site: x.pub] — publishes Y\n\
                   \x20   a.store(1, Ordering::Release);\n\
                   }\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn one_comment_covers_a_multiline_cas_and_its_failure_ordering() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   // ordering: Release on success [site: x.z] — publish Z\n\
                   \x20   let _ = a.compare_exchange(\n\
                   \x20       0,\n\
                   \x20       1,\n\
                   \x20       Ordering::Release,\n\
                   \x20       Ordering::Relaxed,\n\
                   \x20   );\n\
                   }\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn a_comment_above_an_if_unsafe_opener_covers_the_cas_inside() {
        let src = "fn f(t: *mut Node) {\n\
                   \x20   // ordering: Release on success [site: x.link] — publishes the link\n\
                   \x20   if unsafe {\n\
                   \x20       (*t).next.compare_exchange(\n\
                   \x20           ptr::null_mut(),\n\
                   \x20           node,\n\
                   \x20           Ordering::Release,\n\
                   \x20           Ordering::Relaxed,\n\
                   \x20       )\n\
                   \x20   }\n\
                   \x20   .is_ok()\n\
                   \x20   {}\n\
                   }\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn an_attribute_between_comment_and_op_is_fine() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   // ordering: Relaxed [no-edge] — deliberately wrong, mutant only\n\
                   \x20   #[cfg(feature = \"mutant\")]\n\
                   \x20   a.fetch_max(1, Ordering::Relaxed);\n\
                   }\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_needs_no_comment_and_comment_mentions_in_strings_do_not_count() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   a.load(Ordering::SeqCst);\n\
                   \x20   let s = \"ordering: fake\";\n\
                   \x20   a.load(Ordering::Relaxed);\n\
                   }\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn cfg_test_modules_and_test_dirs_are_exempt_from_the_audit() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicUsize) {\n        a.load(Ordering::Relaxed);\n    }\n}\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
        let plain = "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n";
        assert!(find("tests/x.rs", plain).is_empty());
        assert!(find("crates/bench/benches/x.rs", plain).is_empty());
        assert!(find("examples/x.rs", plain).is_empty());
        // …but the facade rule still applies in test code.
        let bypass = "use std::thread;\n";
        assert_eq!(find("tests/x.rs", bypass).len(), 1);
    }

    #[test]
    fn a_blank_line_breaks_audit_adjacency() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   // ordering: Acquire — too far away\n\
                   \n\
                   \x20   a.load(Ordering::Acquire);\n\
                   }\n";
        // Both directions fail: the load is unaudited (rule 1) and the
        // far-away comment is orphaned (rule 2).
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.rule == Rule::OrderingAudit && x.line == 4));
        assert!(f.iter().any(|x| x.rule == Rule::OrphanedAudit && x.line == 2));
    }

    // -- rule 2: orphaned audit --------------------------------------

    #[test]
    fn orphaned_standalone_audit_is_flagged() {
        let src = "fn f() {\n\
                   \x20   // ordering: Acquire — pairs with a store that was deleted\n\
                   \x20   let x = 1;\n\
                   }\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::OrphanedAudit);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn orphaned_trailing_audit_is_flagged() {
        let src = "fn f() {\n    let x = 1; // ordering: stale justification\n}\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::OrphanedAudit);
    }

    #[test]
    fn audit_followed_by_a_blank_line_is_orphaned() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   // ordering: Acquire — adjacency broken below\n\
                   \n\
                   \x20   a.load(Ordering::SeqCst);\n\
                   }\n";
        let f = find("crates/sync/src/x.rs", src);
        assert!(f.iter().any(|x| x.rule == Rule::OrphanedAudit), "{f:?}");
    }

    #[test]
    fn audits_adjacent_to_atomics_are_not_orphaned() {
        // Trailing, above, above-with-attribute, and multi-line-CAS
        // placements — every form the ordering-audit rule accepts.
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   a.load(Ordering::Acquire); // ordering: [pairs: x.pub]\n\
                   \x20   // ordering: Release [site: x.pub] — publishes Y\n\
                   \x20   a.store(1, Ordering::Release);\n\
                   \x20   // ordering: Release on success [site: x.cas], Relaxed on failure\n\
                   \x20   let _ = a.compare_exchange(\n\
                   \x20       0,\n\
                   \x20       1,\n\
                   \x20       Ordering::Release,\n\
                   \x20       Ordering::Relaxed,\n\
                   \x20   );\n\
                   }\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_comments_quoting_the_convention_are_not_orphans() {
        let src = "//! every new atomic carries an `// ordering:` audit comment.\n\
                   /// ordering: documented on the struct, not an audit.\n\
                   fn f() {}\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn orphan_rule_skips_test_code_like_the_audit_rule() {
        let orphan = "fn f() {\n    // ordering: stale\n    let x = 1;\n}\n";
        assert!(find("tests/x.rs", orphan).is_empty());
        let in_cfg_test =
            "#[cfg(test)]\nmod tests {\n    fn f() {\n        // ordering: stale\n        let x = 1;\n    }\n}\n";
        assert!(find("crates/sync/src/x.rs", in_cfg_test).is_empty());
    }

    // -- rule 3: facade bypass ---------------------------------------

    #[test]
    fn facade_bypass_is_flagged_outside_sched_only() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\nuse std::thread;\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::FacadeBypass));
        assert!(find("crates/sched/src/atomic.rs", src).is_empty());
    }

    #[test]
    fn facade_mentions_in_comments_are_ignored() {
        let src = "// falls back to std::thread::yield_now outside a run\nfn f() {}\n";
        assert!(find("crates/faults/src/x.rs", src).is_empty());
    }

    #[test]
    fn core_atomics_are_the_same_bypass_as_std() {
        // `std::sync::atomic` is a re-export of `core::sync::atomic`;
        // arena/epoch code reaching for the `core` spelling skips the
        // facade just as thoroughly.
        let src = "use core::sync::atomic::{AtomicPtr, AtomicUsize};\n\
                   fn f() { let _p: core::sync::atomic::AtomicBool; }\n";
        let f = find("crates/sync/src/universal.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == Rule::FacadeBypass));
        assert!(f[0].msg.contains("core::sync::atomic"), "{}", f[0].msg);
        // The facade itself may (and does) name the core path.
        assert!(find("crates/sched/src/atomic.rs", src).is_empty());
        // A comment mentioning the path is prose, not a bypass.
        let doc = "// core::sync::atomic is off-limits outside the facade\nfn f() {}\n";
        assert!(find("crates/sync/src/x.rs", doc).is_empty());
    }

    // -- rule 4: bench timing ----------------------------------------

    #[test]
    fn instant_now_in_bench_is_flagged_outside_timing_rs() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(find("crates/bench/src/bin/b.rs", src).len(), 1);
        assert_eq!(find("crates/bench/benches/b.rs", src).len(), 1);
        assert!(find("crates/bench/src/timing.rs", src).is_empty());
        assert!(find("crates/faults/src/harness.rs", src).is_empty());
    }

    // -- progress lint -----------------------------------------------

    #[test]
    fn unannotated_loop_is_flagged_in_sync_and_store_only() {
        let src = "fn f() {\n    loop {\n        break;\n    }\n}\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ProgressAnnotation);
        assert_eq!(f[0].line, 2);
        assert_eq!(find("crates/store/src/x.rs", src).len(), 1);
        // Other crates, tests and sched code are out of scope.
        assert!(find("crates/sched/src/x.rs", src).is_empty());
        assert!(find("crates/faults/src/x.rs", src).is_empty());
        assert!(find("tests/x.rs", src).is_empty());
    }

    #[test]
    fn annotated_loops_pass_and_classifications_are_checked() {
        let ok = "fn f() {\n\
                  \x20   // progress: wait-free — at most MAX_THREADS iterations.\n\
                  \x20   for _ in 0..2 {}\n\
                  \x20   // progress: bounded: 64 — one pass per segment slot.\n\
                  \x20   while x() {}\n\
                  \x20   loop { // progress: lock-free — CAS retry, some thread wins.\n\
                  \x20       break;\n\
                  \x20   }\n\
                  }\n";
        assert!(find("crates/sync/src/x.rs", ok).is_empty(), "{:?}", find("crates/sync/src/x.rs", ok));
        // A `progress:` marker with an unknown classification is flagged.
        let bad = "fn f() {\n\
                   \x20   // progress: eventually terminates, trust me.\n\
                   \x20   while x() {}\n\
                   }\n";
        let f = find("crates/sync/src/x.rs", bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ProgressAnnotation);
        assert!(f[0].msg.contains("wait-free"), "{}", f[0].msg);
    }

    #[test]
    fn for_loops_need_no_annotation() {
        // `for` over a finite iterator is structurally bounded; the
        // lint covers only `loop`/`while`, where termination is a
        // claim about the algorithm rather than the iterator.
        let src = "fn f() {\n    for i in 0..n {\n        g(i);\n    }\n}\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn loop_keywords_in_prose_and_idents_do_not_count() {
        let src = "fn f() {\n\
                   \x20   // a loop while waiting would be bad\n\
                   \x20   let while_loops = 3;\n\
                   \x20   let x = workloop(while_loops);\n\
                   }\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_loops_are_exempt_from_progress() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() {\n        loop {\n            break;\n        }\n    }\n}\n";
        assert!(find("crates/sync/src/x.rs", src).is_empty());
    }

    #[test]
    fn orphaned_progress_comment_is_flagged() {
        let src = "fn f() {\n    // progress: wait-free — stale, loop was removed.\n    let x = 1;\n}\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::OrphanedProgress);
        // The same comment above a real loop is not an orphan.
        let ok = "fn f() {\n    // progress: wait-free — bounded by helpers.\n    while x() {}\n}\n";
        assert!(find("crates/sync/src/x.rs", ok).is_empty());
    }

    #[test]
    fn one_annotation_does_not_cover_a_second_loop() {
        let src = "fn f() {\n\
                   \x20   // progress: wait-free — covers only the first loop.\n\
                   \x20   while x() {}\n\
                   \x20   while y() {}\n\
                   }\n";
        let f = find("crates/sync/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::ProgressAnnotation);
        assert_eq!(f[0].line, 4);
    }
}
