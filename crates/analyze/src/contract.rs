//! The typed ordering-contract DSL and its pair-graph pass.
//!
//! PR 5 made every weak atomic carry an `// ordering:` audit comment;
//! this module makes the *content* of those comments machine-checked.
//! Release-side sites declare a stable label, acquire sides name the
//! labels they synchronize with, and the workspace-level pass resolves
//! the references into a release→acquire graph — the same structure the
//! C/C++11 memory-model literature (Batty et al.) and CDSChecker-style
//! tools treat as the unit of synchronization.
//!
//! # Grammar
//!
//! Inside an audit comment's text, square-bracket groups carry the
//! contract (prose outside the brackets stays free-form):
//!
//! ```text
//! // ordering: Release [site: universal.hint_pub] — publishes …
//! // ordering: Acquire [pairs: universal.hint_pub] — inherits …
//! // ordering: Release/Acquire [site: sync.seg_install; pairs: sync.seg_install] — …
//! // ordering: Relaxed [no-edge] — pure counter, no publication …
//! ```
//!
//! * `site: <label>` — declares this statement as a release-capable
//!   synchronization source. Labels are `[A-Za-z0-9_.-]+`, unique
//!   across the workspace, and conventionally `<module>.<what>`.
//! * `pairs: <label>, <label>, …` — declares which sites this
//!   statement's acquire half may synchronize with. A statement may
//!   reference its own label (a CAS loser acquiring from the winner of
//!   the same CAS).
//! * `no-edge` — declares the statement deliberately creates no
//!   happens-before edge. On a relaxed-only statement it is required;
//!   on an acquire-capable statement it is a *claim* ("this acquire is
//!   defensive; nothing pairs here") that the dynamic pass enforces —
//!   an observed edge at such a site is flagged as undeclared. On a
//!   release-capable statement it is an error: an unpaired release is
//!   dead strength.
//!
//! A statement naming a weak ordering must carry the groups its
//! orderings require: release-capable ⇒ `site:`, acquire-capable ⇒
//! `pairs:`, relaxed-only ⇒ `no-edge`. Pure-`SeqCst` statements may
//! declare groups (so weak acquires can pair with a `SeqCst`
//! linearization point) but are not required to.
//!
//! # The two halves
//!
//! The per-statement checks (syntax, required groups, direction
//! agreement) run inside [`crate::lint_source`]; the cross-file pass
//! ([`extract_contract`]) resolves the graph — duplicate labels,
//! unresolved `pairs:` references, pairs whose release side is not
//! release-capable, and pairs whose two sides touch different atomic
//! fields. The extracted [`Contract`] is what `wf-lint --contract-json`
//! emits and what `waitfree_sched::hb` cross-validates dynamically: an
//! observed release→acquire edge between covered files whose site pair
//! is *not* declared fails the campaign, which is the soundness
//! backstop for everything the static pass cannot see.
//!
//! Statements gated behind `#[cfg(feature = "mutant-…")]` are excluded
//! from the graph by default — the contract describes the shipped
//! build — and included when `include_mutants` is set (the CI gate that
//! proves the pass catches a deliberately mis-labeled pair).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::{
    adjacent_comment_lines, cfg_test_lines, split_lines, statement_has_marker, statement_range,
    Finding, Line, Rule, Scope,
};

// ---------------------------------------------------------------------
// Annotation parsing
// ---------------------------------------------------------------------

/// The contract groups parsed out of one statement's audit comment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Annotation {
    /// The `site:` label, if declared.
    pub site: Option<String>,
    /// The `pairs:` labels, if declared.
    pub pairs: Vec<String>,
    /// Whether `no-edge` was declared.
    pub no_edge: bool,
}

impl Annotation {
    /// Whether any contract group was declared at all.
    #[must_use]
    pub fn present(&self) -> bool {
        self.site.is_some() || !self.pairs.is_empty() || self.no_edge
    }
}

fn valid_label(l: &str) -> bool {
    !l.is_empty()
        && l.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Parse the contract groups out of a statement's adjacent comment
/// lines. Bracket groups whose content does not start with a contract
/// key are prose (e.g. a citation `[10]`) and ignored. Returns the
/// annotation plus any syntax errors.
#[must_use]
pub fn parse_annotation(comments: &[String]) -> (Annotation, Vec<String>) {
    let mut ann = Annotation::default();
    let mut errs = Vec::new();
    // Join the comment block into one line first: a bracket group may
    // wrap across physical comment lines (rustfmt-style width limits).
    let joined = comments.iter().map(|c| c.trim()).collect::<Vec<_>>().join(" ");
    {
        let mut rest = joined.as_str();
        while let Some(open) = rest.find('[') {
            let Some(close) = rest[open..].find(']') else { break };
            let body = rest[open + 1..open + close].trim();
            rest = &rest[open + close + 1..];
            let is_group = body == "no-edge"
                || body.starts_with("site:")
                || body.starts_with("pairs:");
            if !is_group {
                continue;
            }
            for part in body.split(';') {
                let part = part.trim();
                if part == "no-edge" {
                    ann.no_edge = true;
                } else if let Some(label) = part.strip_prefix("site:") {
                    let label = label.trim();
                    if !valid_label(label) {
                        errs.push(format!("invalid site label `{label}`"));
                    } else if ann.site.is_some() {
                        errs.push(format!("duplicate `site:` group (`{label}`)"));
                    } else {
                        ann.site = Some(label.to_string());
                    }
                } else if let Some(list) = part.strip_prefix("pairs:") {
                    let mut any = false;
                    for label in list.split(',') {
                        let label = label.trim();
                        if label.is_empty() {
                            continue;
                        }
                        any = true;
                        if !valid_label(label) {
                            errs.push(format!("invalid pairs label `{label}`"));
                        } else if !ann.pairs.iter().any(|p| p == label) {
                            ann.pairs.push(label.to_string());
                        }
                    }
                    if !any {
                        errs.push("empty `pairs:` group".into());
                    }
                } else {
                    errs.push(format!("unknown contract key in `[{part}]`"));
                }
            }
        }
    }
    (ann, errs)
}

// ---------------------------------------------------------------------
// Statement analysis
// ---------------------------------------------------------------------

/// What the orderings named by a statement make it capable of.
#[derive(Clone, Copy, Debug, Default)]
struct Caps {
    release: bool,
    acquire: bool,
    /// Names at least one non-`SeqCst` ordering.
    weak: bool,
}

fn caps_of(stmt_code: &str) -> Caps {
    let has = |o: &str| stmt_code.contains(o);
    let seqcst = has("Ordering::SeqCst");
    // Release needs a write, acquire needs a read: a loads-only
    // statement that happens to name `SeqCst` (an observer chain) is
    // not release-capable no matter the ordering, and vice versa.
    // Fences are both; a statement with no recognizable accessor is
    // conservatively both.
    let writes = [".store(", ".swap(", ".compare_exchange(", ".fetch_add(", ".fetch_sub(", ".fetch_max("]
        .iter()
        .any(|m| stmt_code.contains(m));
    let reads = [".load(", ".swap(", ".compare_exchange(", ".fetch_add(", ".fetch_sub(", ".fetch_max("]
        .iter()
        .any(|m| stmt_code.contains(m));
    let unknown = stmt_code.contains("fence(") || (!writes && !reads);
    Caps {
        release: (has("Ordering::Release") || has("Ordering::AcqRel") || seqcst)
            && (writes || unknown),
        acquire: (has("Ordering::Acquire") || has("Ordering::AcqRel") || seqcst)
            && (reads || unknown),
        weak: crate::WEAK_ORDERINGS.iter().any(|o| has(o)),
    }
}

/// The atomic field a statement's first atomic method call goes
/// through, when the receiver is a projection (`x.field.load(…)`,
/// `x.slots[i].load(…)`). A bare local (`slot.load(…)`) yields `None`:
/// the binding name says nothing about the field, so the pair-field
/// check skips it.
fn atomic_field(stmt_code: &str) -> Option<String> {
    const METHODS: [&str; 7] = [
        ".load(", ".store(", ".swap(", ".compare_exchange(", ".fetch_add(", ".fetch_sub(",
        ".fetch_max(",
    ];
    let dot = METHODS.iter().filter_map(|m| stmt_code.find(m)).min()?;
    let b = stmt_code.as_bytes();
    let mut j = dot;
    // Skip an index group: `slots[i].load` → the field is `slots`.
    if j > 0 && b[j - 1] == b']' {
        let mut depth = 1usize;
        j -= 1;
        while j > 0 && depth > 0 {
            j -= 1;
            match b[j] {
                b'[' => depth -= 1,
                b']' => depth += 1,
                _ => {}
            }
        }
    }
    let mut k = j;
    while k > 0 && (b[k - 1].is_ascii_alphanumeric() || b[k - 1] == b'_') {
        k -= 1;
    }
    if k == j || k == 0 || b[k - 1] != b'.' {
        return None;
    }
    Some(stmt_code[k..j].to_string())
}

/// Whether the statement is gated behind a mutant cargo feature
/// (`#[cfg(feature = "mutant-…")]`; the `#[cfg(not(feature = …))]`
/// twin is the shipped statement and is *not* gated). Detected on the
/// raw source lines because the scanner blanks string-literal
/// contents, which is where the feature name lives. The gating
/// attribute may sit above the statement's comment block, outside its
/// [`statement_range`], so the walk extends up through comments and
/// attributes.
fn mutant_gated(raw_lines: &[&str], s: usize, e: usize) -> bool {
    let gated = |r: &str| r.trim_start().starts_with("#[cfg(feature = \"mutant-");
    if raw_lines[s..=e.min(raw_lines.len().saturating_sub(1))].iter().any(|r| gated(r)) {
        return true;
    }
    let mut i = s;
    while i > 0 {
        let t = raw_lines[i - 1].trim_start();
        if !(t.starts_with("//") || t.starts_with("#[")) {
            break;
        }
        if gated(t) {
            return true;
        }
        i -= 1;
    }
    false
}

/// Visit each statement naming an `Ordering::` exactly once, outside
/// test code. `f` receives `(op_line, start, end)` — all 0-based.
fn for_each_ordering_statement(
    lines: &[Line],
    excluded: &[bool],
    mut f: impl FnMut(usize, usize, usize),
) {
    let mut seen = usize::MAX;
    for (l, line) in lines.iter().enumerate() {
        if excluded[l] || !line.code.contains("Ordering::") {
            continue;
        }
        let (s, e) = statement_range(lines, l);
        if s == seen {
            continue;
        }
        seen = s;
        f(l, s, e);
    }
}

/// Per-statement contract checks, run from [`crate::lint_source`]:
/// group syntax, required groups for the statement's orderings, and
/// direction agreement between groups and orderings.
pub(crate) fn annotation_lint(scope: &Scope<'_>, lines: &[Line], out: &mut Vec<Finding>) {
    if !scope.audited() {
        return;
    }
    let excluded = cfg_test_lines(lines);
    for_each_ordering_statement(lines, &excluded, |l, s, e| {
        // Statements without any audit comment: the ordering-audit rule
        // already fires for weak ones, and bare `SeqCst` statements are
        // exempt by design.
        if !statement_has_marker(lines, l, "ordering:") {
            return;
        }
        let stmt_code: String =
            lines[s..=e].iter().map(|ln| ln.code.as_str()).collect::<Vec<_>>().join("\n");
        let caps = caps_of(&stmt_code);
        let comments = adjacent_comment_lines(lines, l);
        let (ann, errs) = parse_annotation(&comments);
        for msg in errs {
            out.push(Finding { line: l + 1, rule: Rule::ContractSyntax, msg });
        }
        if caps.weak {
            if caps.release && ann.site.is_none() && !ann.no_edge {
                out.push(Finding {
                    line: l + 1,
                    rule: Rule::ContractAnnotation,
                    msg: "release-capable statement must declare `[site: <label>]` \
                          so acquire sides can name it"
                        .into(),
                });
            }
            if caps.acquire && ann.pairs.is_empty() && !ann.no_edge {
                out.push(Finding {
                    line: l + 1,
                    rule: Rule::ContractAnnotation,
                    msg: "acquire-capable statement must declare `[pairs: <labels>]` \
                          naming the release sites it synchronizes with"
                        .into(),
                });
            }
            if !caps.release && !caps.acquire && !ann.no_edge {
                out.push(Finding {
                    line: l + 1,
                    rule: Rule::ContractAnnotation,
                    msg: "relaxed-only statement must declare `[no-edge]` — the \
                          deliberate absence of a happens-before edge is part of \
                          the contract"
                        .into(),
                });
            }
        }
        if ann.site.is_some() && !caps.release {
            out.push(Finding {
                line: l + 1,
                rule: Rule::ContractDirection,
                msg: "`[site:]` on a statement with no release-capable ordering — \
                      nothing published here can head a synchronizes-with edge"
                    .into(),
            });
        }
        if !ann.pairs.is_empty() && !caps.acquire {
            out.push(Finding {
                line: l + 1,
                rule: Rule::ContractDirection,
                msg: "`[pairs:]` on a statement with no acquire-capable ordering — \
                      nothing read here can complete a synchronizes-with edge"
                    .into(),
            });
        }
        // `no-edge` on an acquire-capable statement is a *claim*, not an
        // error: "this ordering is defensive; no synchronizes-with edge
        // lands here" — and the dynamic pass enforces it (an observed
        // edge at an unpaired acquire is flagged as undeclared). On a
        // release-capable statement it stays an error: an unpaired
        // release is either dead strength or a missing `site:`.
        if ann.no_edge && caps.release {
            out.push(Finding {
                line: l + 1,
                rule: Rule::ContractDirection,
                msg: "`[no-edge]` on a release-capable statement — an unpaired \
                      release is dead ordering strength; declare `[site:]` or \
                      weaken the ordering"
                    .into(),
            });
        }
    });
}

// ---------------------------------------------------------------------
// The contract and the cross-file pass
// ---------------------------------------------------------------------

/// One declared synchronization site: an annotated atomic statement.
#[derive(Clone, Debug)]
pub struct SiteDecl {
    /// The `site:` label, if declared (release-capable sites).
    pub label: Option<String>,
    /// Workspace-relative, `/`-separated file path.
    pub file: String,
    /// 1-based line of the first `Ordering::` mention.
    pub line: usize,
    /// 1-based first line of the statement.
    pub start: usize,
    /// 1-based last line of the statement.
    pub end: usize,
    /// The atomic field the statement goes through, when recoverable.
    pub field: Option<String>,
    /// Release-capable (names `Release`, `AcqRel` or `SeqCst`).
    pub release: bool,
    /// Acquire-capable (names `Acquire`, `AcqRel` or `SeqCst`).
    pub acquire: bool,
    /// Declared `no-edge`.
    pub no_edge: bool,
    /// Labels of the release sites this statement's acquire half may
    /// synchronize with.
    pub pairs: Vec<String>,
}

impl SiteDecl {
    /// A stable identity for the site: its label when it has one, else
    /// `file:start`.
    #[must_use]
    pub fn id(&self) -> String {
        self.label.clone().unwrap_or_else(|| format!("{}:{}", self.file, self.start))
    }
}

/// The extracted ordering contract: every declared site, plus the list
/// of files the extraction covered (the dynamic checker treats an edge
/// between covered files with no declared pair as a failure; files
/// outside the list — tests, the facade — are not judged).
#[derive(Clone, Debug, Default)]
pub struct Contract {
    /// Every annotated site, in file/line order.
    pub sites: Vec<SiteDecl>,
    /// Workspace-relative paths of the files the extraction covered.
    pub files: Vec<String>,
}

impl Contract {
    /// Every declared `(release label, acquire site id)` pair.
    #[must_use]
    pub fn declared_pairs(&self) -> BTreeSet<(String, String)> {
        let mut set = BTreeSet::new();
        for s in &self.sites {
            for p in &s.pairs {
                set.insert((p.clone(), s.id()));
            }
        }
        set
    }

    /// The site whose statement range contains `line` of `file`
    /// (matched on path suffix, so `file!()`-style paths resolve
    /// against workspace-relative contract paths).
    #[must_use]
    pub fn site_at(&self, file: &str, line: usize) -> Option<&SiteDecl> {
        self.sites.iter().find(|s| {
            line >= s.start && line <= s.end && (file.ends_with(&s.file) || s.file.ends_with(file))
        })
    }
}

/// A finding attributed to a file (the cross-file pass spans files, so
/// [`Finding`] alone cannot carry the location).
#[derive(Clone, Debug)]
pub struct FileFinding {
    /// Workspace-relative path.
    pub file: String,
    /// The finding itself.
    pub finding: Finding,
}

/// The outcome of [`extract_contract`].
#[derive(Clone, Debug, Default)]
pub struct ContractResult {
    /// The extracted contract (sites are collected even when findings
    /// exist, so tooling can show the broken graph).
    pub contract: Contract,
    /// Cross-file findings: duplicate labels, unresolved `pairs:`
    /// references, non-release pair targets, field mismatches.
    pub findings: Vec<FileFinding>,
}

/// Collect the annotated sites of one file. Parse-failing annotations
/// are skipped here (the per-file pass already reports them).
fn collect_sites(rel: &str, src: &str, include_mutants: bool) -> Vec<SiteDecl> {
    let lines = split_lines(src);
    let raw: Vec<&str> = src.lines().collect();
    let excluded = cfg_test_lines(&lines);
    let mut sites = Vec::new();
    for_each_ordering_statement(&lines, &excluded, |l, s, e| {
        if !include_mutants && mutant_gated(&raw, s, e) {
            return;
        }
        let comments = adjacent_comment_lines(&lines, l);
        let (ann, errs) = parse_annotation(&comments);
        if !ann.present() || !errs.is_empty() {
            return;
        }
        let stmt_code: String =
            lines[s..=e].iter().map(|ln| ln.code.as_str()).collect::<Vec<_>>().join("\n");
        let caps = caps_of(&stmt_code);
        sites.push(SiteDecl {
            label: ann.site,
            file: rel.to_string(),
            line: l + 1,
            start: s + 1,
            end: e + 1,
            field: atomic_field(&stmt_code),
            release: caps.release,
            acquire: caps.acquire,
            no_edge: ann.no_edge,
            pairs: ann.pairs,
        });
    });
    sites
}

/// The workspace pair-graph pass: collect every annotated site from
/// `files` (`(rel_path, source)` pairs; non-audited files are skipped)
/// and resolve the graph. See the module docs for the rules.
#[must_use]
pub fn extract_contract(files: &[(String, String)], include_mutants: bool) -> ContractResult {
    let mut contract = Contract::default();
    for (rel, src) in files {
        let scope = Scope::of(rel);
        if !scope.audited() {
            continue;
        }
        contract.files.push(rel.clone());
        contract.sites.extend(collect_sites(rel, src, include_mutants));
    }

    let mut findings = Vec::new();
    let mut by_label: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, s) in contract.sites.iter().enumerate() {
        if let Some(label) = &s.label {
            if let Some(&first) = by_label.get(label.as_str()) {
                let f = &contract.sites[first];
                findings.push(FileFinding {
                    file: s.file.clone(),
                    finding: Finding {
                        line: s.line,
                        rule: Rule::DuplicateLabel,
                        msg: format!(
                            "site label `{label}` already declared at {}:{}",
                            f.file, f.line
                        ),
                    },
                });
            } else {
                by_label.insert(label.as_str(), i);
            }
        }
    }
    for s in &contract.sites {
        for p in &s.pairs {
            let Some(&ri) = by_label.get(p.as_str()) else {
                findings.push(FileFinding {
                    file: s.file.clone(),
                    finding: Finding {
                        line: s.line,
                        rule: Rule::UnresolvedPair,
                        msg: format!("`pairs: {p}` names a label no site declares"),
                    },
                });
                continue;
            };
            let r = &contract.sites[ri];
            if !r.release {
                findings.push(FileFinding {
                    file: s.file.clone(),
                    finding: Finding {
                        line: s.line,
                        rule: Rule::ContractDirection,
                        msg: format!(
                            "`pairs: {p}` resolves to {}:{}, which has no \
                             release-capable ordering — an acquire cannot pair \
                             with another acquire",
                            r.file, r.line
                        ),
                    },
                });
            }
            if let (Some(rf), Some(af)) = (&r.field, &s.field) {
                if rf != af {
                    findings.push(FileFinding {
                        file: s.file.clone(),
                        finding: Finding {
                            line: s.line,
                            rule: Rule::PairField,
                            msg: format!(
                                "pair `{p}` spans different atomic fields: release \
                                 side touches `{rf}` ({}:{}), acquire side touches \
                                 `{af}` — a synchronizes-with edge needs one location",
                                r.file, r.line
                            ),
                        },
                    });
                }
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.finding.line).cmp(&(&b.file, b.finding.line)));
    ContractResult { contract, findings }
}

// ---------------------------------------------------------------------
// SeqCst report
// ---------------------------------------------------------------------

/// One `SeqCst` site, for the advisory downgrade worklist.
#[derive(Clone, Debug)]
pub struct SeqCstSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the `SeqCst` mention.
    pub line: usize,
    /// Whether the statement carries an adjacent `// ordering:` comment
    /// documenting why it stays `SeqCst` (declared linearization
    /// points); undocumented sites are the downgrade candidates.
    pub documented: bool,
    /// The statement's first code line, trimmed.
    pub context: String,
}

/// List every `Ordering::SeqCst` site in audited, non-test code.
/// Advisory: the undocumented ones are candidates for a future
/// downgrade-and-campaign pass, not failures.
#[must_use]
pub fn seqcst_report(files: &[(String, String)]) -> Vec<SeqCstSite> {
    let mut out = Vec::new();
    for (rel, src) in files {
        let scope = Scope::of(rel);
        if !scope.audited() {
            continue;
        }
        let lines = split_lines(src);
        let excluded = cfg_test_lines(&lines);
        let mut seen = usize::MAX;
        for (l, line) in lines.iter().enumerate() {
            if excluded[l] || !line.code.contains("Ordering::SeqCst") {
                continue;
            }
            let (s, _) = statement_range(&lines, l);
            if s == seen {
                continue;
            }
            seen = s;
            // Context shows the statement's head line — for a multi-line
            // CAS the `Ordering::` line alone says nothing about the
            // atomic involved.
            let mut context = lines[s].code.trim().to_string();
            if context.len() > 90 {
                context.truncate(90);
                context.push('…');
            }
            out.push(SeqCstSite {
                file: rel.clone(),
                line: l + 1,
                documented: statement_has_marker(&lines, l, "ordering:"),
                context,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// JSON emission (hand-rolled, like everything else in this workspace)
// ---------------------------------------------------------------------

/// Escape `s` for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt(s: &Option<String>) -> String {
    match s {
        Some(v) => format!("\"{}\"", json_escape(v)),
        None => "null".into(),
    }
}

fn json_list(items: &[String]) -> String {
    let inner: Vec<String> =
        items.iter().map(|i| format!("\"{}\"", json_escape(i))).collect();
    format!("[{}]", inner.join(", "))
}

/// The machine-readable contract table (`wf-lint --contract-json`).
#[must_use]
pub fn contract_json(c: &Contract) -> String {
    let mut out = String::from("{\n  \"files\": ");
    out.push_str(&json_list(&c.files));
    out.push_str(",\n  \"sites\": [\n");
    for (i, s) in c.sites.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"label\": {}, \"file\": \"{}\", \"line\": {}, \"start\": {}, \
             \"end\": {}, \"field\": {}, \"release\": {}, \"acquire\": {}, \
             \"no_edge\": {}, \"pairs\": {}}}{}\n",
            json_opt(&s.label),
            json_escape(&s.file),
            s.line,
            s.start,
            s.end,
            json_opt(&s.field),
            s.release,
            s.acquire,
            s.no_edge,
            json_list(&s.pairs),
            if i + 1 < c.sites.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Structured diagnostics (`wf-lint --json`): one object per finding.
#[must_use]
pub fn findings_json(findings: &[(String, Finding)]) -> String {
    let mut out = String::from("[\n");
    for (i, (file, f)) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\"}}{}\n",
            f.rule,
            json_escape(file),
            f.line,
            json_escape(&f.msg),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> Vec<(String, String)> {
        vec![(rel.to_string(), src.to_string())]
    }

    fn lint(rel: &str, src: &str) -> Vec<Finding> {
        crate::lint_source(rel, src)
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // -- parsing ------------------------------------------------------

    #[test]
    fn groups_parse_and_prose_brackets_are_ignored() {
        let (ann, errs) = parse_annotation(&[
            "ordering: Release [site: m.pub] — see [10] and [Batty et al.]".into(),
        ]);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ann.site.as_deref(), Some("m.pub"));
        assert!(ann.pairs.is_empty());
        assert!(!ann.no_edge);
    }

    #[test]
    fn combined_group_splits_on_semicolon() {
        let (ann, errs) =
            parse_annotation(&["ordering: AcqRel [site: m.cas; pairs: m.cas, m.other]".into()]);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ann.site.as_deref(), Some("m.cas"));
        assert_eq!(ann.pairs, vec!["m.cas".to_string(), "m.other".to_string()]);
    }

    #[test]
    fn no_edge_and_multi_line_pairs_merge() {
        let (ann, errs) = parse_annotation(&[
            "ordering: Acquire [pairs: a.x]".into(),
            "continued [pairs: a.y] prose".into(),
        ]);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ann.pairs, vec!["a.x".to_string(), "a.y".to_string()]);
        let (ann, _) = parse_annotation(&["ordering: Relaxed [no-edge] — counter".into()]);
        assert!(ann.no_edge);
    }

    #[test]
    fn bad_labels_and_duplicate_site_are_syntax_errors() {
        let (_, errs) = parse_annotation(&["x [site: has space]".into()]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        let (_, errs) = parse_annotation(&["x [site: a] [site: b]".into()]);
        assert_eq!(errs.len(), 1, "{errs:?}");
        let (_, errs) = parse_annotation(&["x [pairs: ]".into()]);
        assert_eq!(errs.len(), 1, "{errs:?}");
    }

    // -- field extraction ---------------------------------------------

    #[test]
    fn field_extraction_wants_a_projection() {
        assert_eq!(atomic_field("self.hint.store(v, Ordering::Release);").as_deref(), Some("hint"));
        assert_eq!(
            atomic_field("seg.slots[i].load(Ordering::Acquire)").as_deref(),
            Some("slots")
        );
        assert_eq!(atomic_field("(*node).next.load(Ordering::Acquire)").as_deref(), Some("next"));
        assert_eq!(atomic_field("slot.load(Ordering::Acquire)"), None);
    }

    // -- per-statement lint -------------------------------------------

    #[test]
    fn weak_release_without_site_is_flagged() {
        let src = "fn f(a: &A) {\n    // ordering: Release — publishes the node.\n    a.x.store(1, Ordering::Release);\n}\n";
        let f = lint("crates/sync/src/m.rs", src);
        assert!(rules(&f).contains(&Rule::ContractAnnotation), "{f:?}");
    }

    #[test]
    fn weak_acquire_without_pairs_is_flagged() {
        let src = "fn f(a: &A) {\n    // ordering: Acquire — pairs with the install.\n    let v = a.x.load(Ordering::Acquire);\n}\n";
        let f = lint("crates/sync/src/m.rs", src);
        assert!(rules(&f).contains(&Rule::ContractAnnotation), "{f:?}");
    }

    #[test]
    fn relaxed_without_no_edge_is_flagged() {
        let src = "fn f(a: &A) {\n    // ordering: Relaxed — monotonic counter.\n    a.x.fetch_add(1, Ordering::Relaxed);\n}\n";
        let f = lint("crates/sync/src/m.rs", src);
        assert!(rules(&f).contains(&Rule::ContractAnnotation), "{f:?}");
    }

    #[test]
    fn complete_annotations_pass() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — publishes the node.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "    // ordering: Acquire [pairs: m.pub] — sees the publish.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "    // ordering: Relaxed [no-edge] — stat counter only.\n",
            "    a.n.fetch_add(1, Ordering::Relaxed);\n",
            "}\n",
        );
        let f = lint("crates/sync/src/m.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn direction_mismatches_are_flagged() {
        // `site:` on a pure load, `pairs:` on a pure store, `no-edge`
        // on a release.
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Acquire [site: m.bad; pairs: m.bad] — wrong side.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "    // ordering: Release [site: m.ok; pairs: m.ok] — wrong side.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "    // ordering: Release [no-edge] — contradiction.\n",
            "    a.y.store(1, Ordering::Release);\n",
            "    // ordering: Acquire [no-edge] — defensive acquire: legal,\n",
            "    // and the dynamic pass enforces the no-edge claim.\n",
            "    let w = a.z.load(Ordering::Acquire);\n",
            "}\n",
        );
        let f = lint("crates/sync/src/m.rs", src);
        let dirs = rules(&f).iter().filter(|r| **r == Rule::ContractDirection).count();
        assert_eq!(dirs, 3, "{f:?}");
        assert!(!f.iter().any(|fd| fd.line > 7), "defensive acquire no-edge is clean: {f:?}");
    }

    #[test]
    fn bare_seqcst_statement_needs_nothing() {
        let src = "fn f(a: &A) {\n    let v = a.x.load(Ordering::SeqCst);\n}\n";
        let f = lint("crates/sync/src/m.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotated_seqcst_site_is_legal_and_extracted() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: SeqCst [site: m.decide; pairs: m.decide] — linearization point.\n",
            "    let _ = a.x.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);\n",
            "}\n",
        );
        let f = lint("crates/sync/src/m.rs", src);
        assert!(f.is_empty(), "{f:?}");
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.contract.sites.len(), 1);
        assert!(r.contract.sites[0].release && r.contract.sites[0].acquire);
    }

    // -- cross-file pass ----------------------------------------------

    #[test]
    fn unresolved_pair_is_flagged() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Acquire [pairs: m.missing] — dangling.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "}\n",
        );
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].finding.rule, Rule::UnresolvedPair);
    }

    #[test]
    fn duplicate_label_is_flagged_at_second_decl() {
        let a = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — first.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "}\n",
        );
        let b = concat!(
            "fn g(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — second.\n",
            "    a.x.store(2, Ordering::Release);\n",
            "}\n",
        );
        let files = vec![
            ("crates/sync/src/a.rs".to_string(), a.to_string()),
            ("crates/sync/src/b.rs".to_string(), b.to_string()),
        ];
        let r = extract_contract(&files, false);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].finding.rule, Rule::DuplicateLabel);
        assert_eq!(r.findings[0].file, "crates/sync/src/b.rs");
    }

    #[test]
    fn pairing_with_a_non_release_site_is_a_direction_error() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Acquire [site: m.acq2; pairs: m.acq] — label on the wrong side;\n",
            "    // the per-file pass flags the site, the graph flags the reference.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "    // ordering: Acquire [site: m.acq; pairs: m.acq2] — also wrong.\n",
            "    let w = a.x.load(Ordering::Acquire);\n",
            "}\n",
        );
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        let dirs = r
            .findings
            .iter()
            .filter(|f| f.finding.rule == Rule::ContractDirection)
            .count();
        assert_eq!(dirs, 2, "{:?}", r.findings);
    }

    #[test]
    fn cross_field_pair_is_flagged() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — publishes via `x`.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "    // ordering: Acquire [pairs: m.pub] — but reads `y`.\n",
            "    let v = a.y.load(Ordering::Acquire);\n",
            "}\n",
        );
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].finding.rule, Rule::PairField);
    }

    #[test]
    fn bare_local_receiver_skips_the_field_check() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — publishes via `x`.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "    // ordering: Acquire [pairs: m.pub] — receiver is a local.\n",
            "    let v = slot.load(Ordering::Acquire);\n",
            "}\n",
        );
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn mutant_gated_statements_are_excluded_by_default() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — publishes via `x`.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "    #[cfg(not(feature = \"mutant-unpaired-acquire\"))]\n",
            "    // ordering: Acquire [pairs: m.pub] — shipped pairing.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "    #[cfg(feature = \"mutant-unpaired-acquire\")]\n",
            "    // ordering: Acquire [pairs: m.wrong] — deliberately dangling.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "}\n",
        );
        let clean = extract_contract(&one("crates/sync/src/m.rs", src), false);
        assert!(clean.findings.is_empty(), "{:?}", clean.findings);
        assert_eq!(clean.contract.sites.len(), 2);
        let mutated = extract_contract(&one("crates/sync/src/m.rs", src), true);
        assert!(
            mutated.findings.iter().any(|f| f.finding.rule == Rule::UnresolvedPair),
            "{:?}",
            mutated.findings
        );
    }

    #[test]
    fn tests_and_sched_files_are_not_extracted() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    a.x.store(1, Ordering::Release);\n",
            "}\n",
        );
        let files = vec![
            ("crates/sched/src/m.rs".to_string(), src.to_string()),
            ("tests/m.rs".to_string(), src.to_string()),
        ];
        let r = extract_contract(&files, false);
        assert!(r.contract.files.is_empty());
        assert!(r.contract.sites.is_empty());
    }

    #[test]
    fn declared_pairs_and_site_at_resolve() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — publishes.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "    // ordering: Acquire [pairs: m.pub] — reads.\n",
            "    let v = a.x.load(Ordering::Acquire);\n",
            "}\n",
        );
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        let pairs = r.contract.declared_pairs();
        assert_eq!(pairs.len(), 1);
        let (rel, acq) = pairs.iter().next().unwrap();
        assert_eq!(rel, "m.pub");
        assert_eq!(acq, "crates/sync/src/m.rs:5");
        // `file!()`-style absolute-ish paths match by suffix.
        let s = r.contract.site_at("crates/sync/src/m.rs", 3).unwrap();
        assert_eq!(s.label.as_deref(), Some("m.pub"));
        assert!(r.contract.site_at("crates/sync/src/m.rs", 1).is_none());
    }

    // -- seqcst report ------------------------------------------------

    #[test]
    fn seqcst_report_distinguishes_documented_sites() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: SeqCst [site: m.decide; pairs: m.decide] — linearization point.\n",
            "    let _ = a.x.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst);\n",
            "    let v = a.y.load(Ordering::SeqCst);\n",
            "}\n",
        );
        let r = seqcst_report(&one("crates/sync/src/m.rs", src));
        assert_eq!(r.len(), 2, "{r:?}");
        assert!(r[0].documented);
        assert!(!r[1].documented);
        assert_eq!(r[1].line, 4);
    }

    // -- json ---------------------------------------------------------

    #[test]
    fn json_emitters_escape_and_shape() {
        let src = concat!(
            "fn f(a: &A) {\n",
            "    // ordering: Release [site: m.pub] — publishes.\n",
            "    a.x.store(1, Ordering::Release);\n",
            "}\n",
        );
        let r = extract_contract(&one("crates/sync/src/m.rs", src), false);
        let js = contract_json(&r.contract);
        assert!(js.contains("\"label\": \"m.pub\""), "{js}");
        assert!(js.contains("\"field\": \"x\""), "{js}");
        let fj = findings_json(&[(
            "crates/sync/src/m.rs".to_string(),
            Finding { line: 7, rule: Rule::UnresolvedPair, msg: "a \"quoted\" msg".into() },
        )]);
        assert!(fj.contains("\"rule\": \"unresolved-pair\""), "{fj}");
        assert!(fj.contains("\\\"quoted\\\""), "{fj}");
    }
}
