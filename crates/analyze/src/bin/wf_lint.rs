//! `wf-lint` — run the three workspace lint rules (ordering audit,
//! facade bypass, bench timing; see the crate docs) over every `.rs`
//! file in the workspace and exit non-zero on any finding.
//!
//! Usage: `cargo run -p waitfree-analyze --bin wf-lint [root]`
//!
//! With no argument the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` containing
//! `[workspace]`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use waitfree_analyze::lint_source;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(p) => p,
            None => {
                eprintln!("wf-lint: no workspace root found above the current directory");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut total = 0usize;
    for rel in &files {
        let src = match fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wf-lint: {}: {e}", rel.display());
                total += 1;
                continue;
            }
        };
        // Rule scoping keys on `/`-separated components.
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        for f in lint_source(&rel_str, &src) {
            println!("{rel_str}:{}: {f}", f.line);
            total += 1;
        }
    }

    if total == 0 {
        println!("wf-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("wf-lint: {total} finding(s)");
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect `.rs` files under `dir` (paths relative to
/// `root`), skipping build output, VCS metadata and hidden directories.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
