//! `wf-lint` — run the workspace lint rules (ordering audit, facade
//! bypass, bench timing, ordering-contract annotations, progress
//! annotations; see the crate docs) plus the cross-file pair-graph
//! pass over every `.rs` file in the workspace, and exit non-zero on
//! any finding.
//!
//! Usage: `cargo run -p waitfree-analyze --bin wf-lint [flags] [root]`
//!
//! Flags:
//! * `--json` — emit findings as a JSON array instead of the human
//!   format (exit code unchanged).
//! * `--contract-json` — emit the extracted ordering contract as JSON
//!   on stdout and nothing else; exits non-zero only if the contract
//!   itself fails to resolve.
//! * `--seqcst-report` — advisory: list every `SeqCst` site in audited
//!   code, flagging the undocumented ones as downgrade candidates;
//!   always exits zero.
//! * `--mutants` — include `#[cfg(feature = "mutant-…")]`-gated
//!   statements in the pair graph (the CI mutant gate runs this and
//!   expects a failure).
//!
//! With no root argument the workspace root is found by walking up
//! from the current directory to the first `Cargo.toml` containing
//! `[workspace]`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use waitfree_analyze::contract;
use waitfree_analyze::lint_source;
use waitfree_analyze::Finding;

fn main() -> ExitCode {
    let mut json = false;
    let mut contract_json = false;
    let mut seqcst = false;
    let mut mutants = false;
    let mut root_arg = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--contract-json" => contract_json = true,
            "--seqcst-report" => seqcst = true,
            "--mutants" => mutants = true,
            other if other.starts_with("--") => {
                eprintln!("wf-lint: unknown flag {other}");
                return ExitCode::FAILURE;
            }
            other => root_arg = Some(PathBuf::from(other)),
        }
    }
    let root = match root_arg.or_else(find_workspace_root) {
        Some(p) => p,
        None => {
            eprintln!("wf-lint: no workspace root found above the current directory");
            return ExitCode::FAILURE;
        }
    };

    let mut paths = Vec::new();
    collect_rs_files(&root, &root, &mut paths);
    paths.sort();

    // (rel_path, source) for every readable file; read errors are
    // findings in their own right.
    let mut files: Vec<(String, String)> = Vec::new();
    let mut findings: Vec<(String, Finding)> = Vec::new();
    for rel in &paths {
        // Rule scoping keys on `/`-separated components.
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        match fs::read_to_string(root.join(rel)) {
            Ok(src) => files.push((rel_str, src)),
            Err(e) => {
                eprintln!("wf-lint: {rel_str}: {e}");
                findings.push((
                    rel_str,
                    Finding {
                        line: 0,
                        rule: waitfree_analyze::Rule::OrderingAudit,
                        msg: format!("unreadable file: {e}"),
                    },
                ));
            }
        }
    }

    if seqcst {
        let report = contract::seqcst_report(&files);
        let undocumented = report.iter().filter(|s| !s.documented).count();
        println!("wf-lint: SeqCst sites in audited code (advisory downgrade worklist)");
        for s in &report {
            let tag = if s.documented { "documented" } else { "candidate " };
            println!("  [{tag}] {}:{}: {}", s.file, s.line, s.context);
        }
        println!(
            "wf-lint: {} SeqCst site(s), {} documented, {} downgrade candidate(s)",
            report.len(),
            report.len() - undocumented,
            undocumented
        );
        return ExitCode::SUCCESS;
    }

    // Cross-file pair-graph pass (always part of the default run; the
    // only output in --contract-json mode).
    let result = contract::extract_contract(&files, mutants);
    if contract_json {
        for f in &result.findings {
            eprintln!("{}:{}: {}", f.file, f.finding.line, f.finding);
        }
        print!("{}", contract::contract_json(&result.contract));
        return if result.findings.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    for (rel_str, src) in &files {
        for f in lint_source(rel_str, src) {
            findings.push((rel_str.clone(), f));
        }
    }
    for f in result.findings {
        findings.push((f.file, f.finding));
    }
    findings.sort_by(|a, b| (&a.0, a.1.line).cmp(&(&b.0, b.1.line)));

    if json {
        print!("{}", contract::findings_json(&findings));
    } else {
        for (file, f) in &findings {
            println!("{file}:{}: {f}", f.line);
        }
    }

    if findings.is_empty() {
        if !json {
            println!(
                "wf-lint: {} files clean ({} contract sites, {} declared pairs)",
                files.len(),
                result.contract.sites.len(),
                result.contract.declared_pairs().len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("wf-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect `.rs` files under `dir` (paths relative to
/// `root`), skipping build output, VCS metadata and hidden directories.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}
