//! Scheduled runs with machine-checked linearizability verdicts:
//! the glue between the deterministic scheduler, the history recorder
//! and `waitfree-model`'s Wing&Gong-style checker.
//!
//! [`run_and_check`] drives one scheduled run and checks its history;
//! [`campaign`] sweeps a seed range with a [`RandomWalk`] or [`Pct`]
//! strategy, printing every failing schedule (seed + decision trace) so
//! a violation can be replayed bit-for-bit with [`replay`].
//!
//! Every checked run also gets a happens-before verdict ([`crate::hb`])
//! over its trace: a run whose history linearizes but whose orderings
//! are too weak to justify an observed value is still a failure —
//! linearizability under the SC scheduler does not transfer to
//! weakly-ordered hardware unless the declared edges carry the proof.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use waitfree_model::{linearize, History, LinearizeReport, ObjectSpec, PendingPolicy};

use crate::hb::{self, Contract, HbReport};
use crate::recorder::HistoryRecorder;
use crate::runtime::{run, RunOptions, RunResult};
use crate::strategy::{Pct, RandomWalk, Strategy};

/// One scheduled run plus its linearizability verdict.
#[derive(Debug)]
pub struct CheckedRun<S: ObjectSpec> {
    /// The scheduler's record of the run (decisions, trace, crashes).
    pub run: RunResult,
    /// The recorded concurrent history.
    pub history: History<S::Op, S::Resp>,
    /// The checker's verdict on that history.
    pub report: LinearizeReport,
    /// The happens-before pass's verdict on the run's trace.
    pub hb: HbReport,
}

impl<S: ObjectSpec> CheckedRun<S> {
    /// Whether the run completed cleanly, its history linearized, and
    /// every observed value was justified by declared ordering edges.
    pub fn is_ok(&self) -> bool {
        self.run.error.is_none() && self.report.outcome.is_ok() && self.hb.is_clean()
    }
}

/// Run `body` under `strategy` (virtual thread 0), snapshot the history
/// recorded through the provided [`HistoryRecorder`], and check it
/// against the sequential specification `initial` with
/// [`PendingPolicy::MayTakeEffect`] — so operations left pending by an
/// injected crash are allowed to either have taken effect or not.
pub fn run_and_check<S, St, F>(initial: &S, strategy: St, opts: RunOptions, body: F) -> CheckedRun<S>
where
    S: ObjectSpec,
    St: Strategy + 'static,
    F: FnOnce(HistoryRecorder<S>),
{
    run_and_check_with(initial, strategy, opts, None, body)
}

/// [`run_and_check`], with the happens-before pass additionally
/// cross-validating observed synchronization edges against an extracted
/// ordering contract ([`crate::hb::check_with_contract`]): an observed
/// release→acquire edge whose site pair the contract does not declare
/// fails the run.
pub fn run_and_check_with<S, St, F>(
    initial: &S,
    strategy: St,
    opts: RunOptions,
    contract: Option<&Contract>,
    body: F,
) -> CheckedRun<S>
where
    S: ObjectSpec,
    St: Strategy + 'static,
    F: FnOnce(HistoryRecorder<S>),
{
    let recorder = HistoryRecorder::<S>::new();
    let handed_out = recorder.clone();
    let run = run(strategy, opts, move || body(handed_out));
    let history = recorder.snapshot();
    let report = linearize(&history, initial, PendingPolicy::MayTakeEffect);
    let hb = hb::check_with_contract(&run.trace, contract);
    CheckedRun { run, history, report, hb }
}

/// Which strategy family a [`campaign`] sweeps.
#[derive(Clone, Debug)]
pub enum Explore {
    /// Uniform [`RandomWalk`], one seed per run.
    RandomWalk,
    /// [`Pct`] with the given bug depth and estimated schedule-point
    /// count, one seed per run.
    Pct {
        /// PCT bug depth (number of ordering constraints; ≥ 1).
        depth: usize,
        /// Over-approximation of schedule points per run.
        est_steps: usize,
    },
}

impl Explore {
    fn strategy(&self, seed: u64) -> Box<dyn Strategy> {
        match *self {
            Explore::RandomWalk => Box::new(RandomWalk::new(seed)),
            Explore::Pct { depth, est_steps } => Box::new(Pct::new(seed, depth, est_steps)),
        }
    }
}

/// A schedule on which the checked property failed: everything needed to
/// reproduce it.
#[derive(Clone, Debug)]
pub struct FailingSchedule {
    /// The seed that produced the schedule.
    pub seed: u64,
    /// The strategy (with parameters) that consumed the seed.
    pub strategy: String,
    /// The vtid chosen at each schedule point.
    pub decisions: Vec<usize>,
    /// What went wrong (checker verdict or scheduler error).
    pub detail: String,
}

impl fmt::Display for FailingSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "FAILING SCHEDULE")?;
        writeln!(f, "  strategy:  {}", self.strategy)?;
        writeln!(f, "  seed:      {}", self.seed)?;
        writeln!(f, "  decisions: {:?}", self.decisions)?;
        write!(f, "  detail:    {}", self.detail)
    }
}

/// Outcome of a seed sweep.
#[derive(Debug)]
pub struct CampaignReport {
    /// Number of runs performed.
    pub runs: usize,
    /// Every run whose history failed to linearize, whose scheduler
    /// aborted, or whose trace failed the happens-before pass, with its
    /// replayable schedule.
    pub failures: Vec<FailingSchedule>,
    /// Union over all runs of the declared `(release label, acquire
    /// site id)` pairs exercised — empty when no contract was supplied.
    pub exercised: BTreeSet<(String, String)>,
}

impl CampaignReport {
    /// Whether every run yielded a `Linearizable` verdict and a clean
    /// happens-before report.
    pub fn all_linearizable(&self) -> bool {
        self.failures.is_empty()
    }

    /// Declared pairs no run of this campaign exercised — the advisory
    /// coverage gap of the static↔dynamic cross-validation.
    pub fn unexercised(&self, contract: &Contract) -> BTreeSet<(String, String)> {
        contract.declared_pairs().difference(&self.exercised).cloned().collect()
    }
}

/// Sweep `seeds`, one scheduled run per seed, re-creating the object and
/// workload through `body` each time; every failing schedule is printed
/// to stderr and returned. `body` receives the recorder and must record
/// each concurrent operation under the invoking virtual thread's pid.
pub fn campaign<S, F>(
    initial: &S,
    explore: &Explore,
    seeds: Range<u64>,
    opts: &RunOptions,
    body: F,
) -> CampaignReport
where
    S: ObjectSpec,
    F: FnMut(HistoryRecorder<S>),
{
    campaign_with(initial, explore, seeds, opts, None, body)
}

/// [`campaign`] with ordering-contract cross-validation: every run's
/// happens-before pass checks observed synchronization edges against
/// `contract` (undeclared edges fail the run), and the report
/// accumulates which declared pairs the sweep exercised.
pub fn campaign_with<S, F>(
    initial: &S,
    explore: &Explore,
    seeds: Range<u64>,
    opts: &RunOptions,
    contract: Option<&Contract>,
    mut body: F,
) -> CampaignReport
where
    S: ObjectSpec,
    F: FnMut(HistoryRecorder<S>),
{
    let mut failures = Vec::new();
    let mut exercised = BTreeSet::new();
    let mut runs = 0;
    for seed in seeds {
        let strategy = explore.strategy(seed);
        let strategy_desc = strategy.describe();
        let checked = run_and_check_with(initial, strategy, opts.clone(), contract, &mut body);
        runs += 1;
        exercised.extend(checked.hb.exercised.iter().cloned());
        let detail = if let Some(e) = &checked.run.error {
            Some(format!("scheduler aborted: {e}"))
        } else if !checked.report.outcome.is_ok() {
            Some(format!("history not linearizable: {:?}", checked.history))
        } else if !checked.hb.violations.is_empty() {
            Some(format!(
                "declared orderings too weak ({} of {} reads unjustified): {}",
                checked.hb.violations.len(),
                checked.hb.reads_checked,
                checked.hb.violations[0]
            ))
        } else if !checked.hb.undeclared.is_empty() {
            Some(format!(
                "undeclared synchronization ({} edge(s) outside the ordering contract): {}",
                checked.hb.undeclared.len(),
                checked.hb.undeclared[0]
            ))
        } else {
            None
        };
        if let Some(detail) = detail {
            let failure = FailingSchedule {
                seed,
                strategy: strategy_desc,
                decisions: checked.run.decisions.clone(),
                detail,
            };
            eprintln!("{failure}");
            failures.push(failure);
        }
    }
    CampaignReport { runs, failures, exercised }
}

/// Replay a single seed of a campaign: same strategy family, same seed,
/// same body ⇒ the same decisions, trace and history, bit for bit.
pub fn replay<S, F>(
    initial: &S,
    explore: &Explore,
    seed: u64,
    opts: RunOptions,
    body: F,
) -> CheckedRun<S>
where
    S: ObjectSpec,
    F: FnOnce(HistoryRecorder<S>),
{
    run_and_check(initial, explore.strategy(seed), opts, body)
}
