//! A small deterministic PRNG (SplitMix64) shared by the whole workspace.
//!
//! The repository builds with no external crates, so this replaces
//! `rand::StdRng` everywhere a seeded, reproducible stream is needed:
//! randomized schedule exploration, property-style tests, and the fault
//! adversary. SplitMix64 passes BigCrush for this size class and is the
//! standard seeder for the xoshiro family; its statistical quality is far
//! beyond what schedule shuffling and per-mille coin flips require.

/// A seeded deterministic generator. Identical seeds yield identical
/// streams on every platform (the algorithm is pure 64-bit arithmetic).
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw,
        // irrelevant at the scales used here.
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as usize) as i64
    }

    /// A coin that lands true `per_mille` times out of 1000.
    pub fn per_mille(&mut self, per_mille: u32) -> bool {
        (self.below(1000) as u32) < per_mille
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = DetRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn per_mille_rates_are_sane() {
        let mut rng = DetRng::new(11);
        assert!(!(0..1000).any(|_| rng.per_mille(0)));
        assert!((0..1000).all(|_| rng.per_mille(1000)));
        let hits = (0..10_000).filter(|_| rng.per_mille(100)).count();
        assert!((500..2000).contains(&hits), "~10% expected, got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(3);
        let mut xs: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
