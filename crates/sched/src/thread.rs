//! Threading facade: `std::thread` by default, virtual threads under the
//! `sched` feature.
//!
//! With the feature off, `spawn`/`yield_now`/`JoinHandle` *are* the std
//! items. With the feature on, `spawn` called inside a scheduled run
//! registers a virtual thread with the scheduler (still backed by a real
//! OS thread, but gated so only one virtual thread runs at a time);
//! called outside a run it falls back to a plain `std::thread::spawn`,
//! so ordinary tests keep working with the feature enabled.

#[cfg(not(feature = "sched"))]
pub use std::thread::{park_timeout, sleep, spawn, yield_now, JoinHandle};

#[cfg(feature = "sched")]
pub use virt::{park_timeout, sleep, spawn, yield_now, JoinHandle};

#[cfg(feature = "sched")]
mod virt {
    use std::sync::{Arc, Mutex};
    use std::thread;

    use crate::runtime::{self, RtInner};

    /// Join handle over either a plain OS thread (spawned outside any
    /// scheduled run) or a virtual thread registered with the scheduler.
    pub struct JoinHandle<T> {
        imp: Imp<T>,
    }

    enum Imp<T> {
        Os(thread::JoinHandle<T>),
        Virtual {
            rt: Arc<RtInner>,
            vtid: usize,
            result: Arc<Mutex<Option<thread::Result<T>>>>,
        },
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.imp {
                Imp::Os(h) => f.debug_tuple("JoinHandle").field(h).finish(),
                Imp::Virtual { vtid, .. } => {
                    f.debug_struct("JoinHandle").field("vtid", vtid).finish_non_exhaustive()
                }
            }
        }
    }

    impl<T> JoinHandle<T> {
        pub(crate) fn virtual_handle(
            rt: Arc<RtInner>,
            vtid: usize,
            result: Arc<Mutex<Option<thread::Result<T>>>>,
        ) -> Self {
            Self { imp: Imp::Virtual { rt, vtid, result } }
        }

        /// Waits for the thread to finish, returning `Err` with the
        /// panic payload if it panicked (including injected
        /// [`crate::crash::CrashSignal`] crashes).
        ///
        /// Joining a virtual thread from inside its run is a scheduling
        /// point: the joiner blocks until the target exits and the
        /// strategy picks who runs in between.
        pub fn join(self) -> thread::Result<T> {
            match self.imp {
                Imp::Os(h) => h.join(),
                Imp::Virtual { rt, vtid, result } => runtime::join_virtual(&rt, vtid, &result),
            }
        }
    }

    /// Spawns a thread. Inside a scheduled run this registers a virtual
    /// thread (the strategy decides when it first runs); outside it is
    /// `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match runtime::current() {
            Some((rt, parent)) => runtime::spawn_virtual(&rt, parent, f),
            None => JoinHandle { imp: Imp::Os(thread::spawn(f)) },
        }
    }

    /// Yields. Inside a scheduled run this is a voluntary schedule point
    /// (strategies that keep the running thread at atomic points still
    /// reschedule here); outside it is `std::thread::yield_now`.
    pub fn yield_now() {
        if runtime::current().is_some() {
            runtime::yield_point();
        } else {
            thread::yield_now();
        }
    }

    /// Real-time sleep, in both modes. Never a schedule point: wall-time
    /// waits have no place inside a deterministic run (a scheduled
    /// virtual thread that sleeps holds the baton for the duration —
    /// like `FaultAction::Stall`, keep timed waits out of scheduled
    /// scenarios).
    pub fn sleep(dur: std::time::Duration) {
        thread::sleep(dur);
    }

    /// Real-time `park_timeout`, in both modes. Never a schedule point
    /// (see [`sleep`]).
    pub fn park_timeout(dur: std::time::Duration) {
        thread::park_timeout(dur);
    }
}
