//! Cooperative deterministic scheduler: virtual threads, one runnable at
//! a time, a strategy decision before every atomic operation.
//!
//! Each virtual thread is backed by a real OS thread, but a baton
//! (mutex + condvar) guarantees exactly one of them executes between
//! schedule points. Every facade atomic op, `yield_now`, `spawn`, join
//! and thread exit is a schedule point: the [`Strategy`] picks which
//! runnable virtual thread holds the baton next. Given the same strategy
//! state (e.g. the same seed) the whole run — every decision, every
//! traced atomic op, every response — is bit-for-bit reproducible,
//! because the scheduled code's only source of nondeterminism *was* the
//! interleaving.
//!
//! Granularity: interleavings of whole atomic operations under
//! sequential consistency. Weak-memory reorderings are out of scope, but
//! the trace records enough of each operation — location, kind,
//! `Ordering`, compare-exchange outcome, thread lifecycle edges — for
//! the happens-before pass in [`crate::hb`] to decide whether every
//! observed value is justified by a *declared* edge rather than by the
//! scheduler's accidental serialization.
//!
//! Trace order is **execution order**: an operation's event is appended
//! when the thread is about to perform the hardware op (baton in hand),
//! not when it announced the schedule point. The two differ whenever the
//! strategy parks the announcing thread and runs others first.
//!
//! Panics in scheduled code are sorted into three bins:
//! * [`crate::crash::CrashSignal`] — an injected crash; the virtual
//!   thread is marked crashed, the run continues (this is how fault
//!   injection composes with deterministic schedules),
//! * the internal abort signal — the scheduler tearing down parked
//!   threads after a deadlock/step-bound/panic abort,
//! * anything else — a genuine bug (e.g. a failed assertion); the run is
//!   aborted and the payload is re-thrown from [`run`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

use crate::crash::CrashSignal;
use crate::strategy::{Choice, PointKind, Strategy};
use crate::thread::JoinHandle;

/// One traced atomic operation from a scheduled run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpEvent {
    /// Virtual thread that performed the op.
    pub vtid: usize,
    /// Facade type name, e.g. `"AtomicUsize"`.
    pub atomic: &'static str,
    /// Which operation.
    pub op: AtomicOp,
    /// The memory ordering the caller requested (success ordering for
    /// compare-exchange).
    pub ordering: Ordering,
    /// Dense id of the atomic variable the op touched, assigned in order
    /// of first appearance in the trace — so two runs of the same
    /// schedule get identical ids even though heap addresses differ.
    /// (Caveat: an id is keyed on the variable's address, so an atomic
    /// dropped mid-run and another allocated at the same address would
    /// alias; the workloads under test keep their atomics alive for the
    /// whole run.)
    pub loc: usize,
    /// Failure ordering (compare-exchange only).
    pub failure_ordering: Option<Ordering>,
    /// Whether a compare-exchange succeeded (`None` for other ops).
    pub cas_success: Option<bool>,
    /// Source file of the call site (`file!()`-style workspace-relative
    /// path, captured via `#[track_caller]` through the facade shims).
    /// Empty when synthesized by tests.
    pub site_file: &'static str,
    /// 1-based source line of the call site (`0` when synthesized).
    pub site_line: u32,
}

/// Kinds of traced atomic operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOp {
    /// `load`
    Load,
    /// `store`
    Store,
    /// `swap`
    Swap,
    /// `compare_exchange`
    CompareExchange,
    /// `fetch_add`
    FetchAdd,
    /// `fetch_sub`
    FetchSub,
    /// `fetch_max`
    FetchMax,
}

/// One entry of a scheduled run's event log, in execution order.
///
/// Atomic operations are the schedule points; spawn/exit/join entries
/// record the thread-lifecycle happens-before edges the [`crate::hb`]
/// checker needs (a child starts after its spawn; a joiner resumes after
/// the target's exit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An atomic operation.
    Op(OpEvent),
    /// An atomic fence (facade [`crate::atomic::fence`]).
    Fence {
        /// Thread that issued the fence.
        vtid: usize,
        /// The fence's ordering.
        ordering: Ordering,
    },
    /// `parent` registered virtual thread `child` (the child executes
    /// nothing before this point).
    Spawn {
        /// The spawning thread.
        parent: usize,
        /// The new thread.
        child: usize,
    },
    /// `vtid` finished (completed, crashed, or unwound); it takes no
    /// further steps.
    Exit {
        /// The exiting thread.
        vtid: usize,
    },
    /// `joiner` observed `target`'s termination via `join`.
    Join {
        /// The joining thread.
        joiner: usize,
        /// The joined (terminated) thread.
        target: usize,
    },
}

impl TraceEvent {
    /// The contained atomic op, if this entry is one.
    #[must_use]
    pub fn as_op(&self) -> Option<&OpEvent> {
        match self {
            TraceEvent::Op(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a scheduled run was aborted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// No virtual thread was runnable but not all had exited. Can only
    /// happen through blocking joins (e.g. joining a thread that is
    /// itself blocked forever) or a failpoint action that parks the OS
    /// thread outside the scheduler's knowledge (`FaultAction::Stall` —
    /// see the crate docs; use `Crash`/`Yield` under the scheduler).
    Deadlock {
        /// Virtual threads blocked in a join at the time.
        blocked: Vec<usize>,
    },
    /// The run exceeded [`RunOptions::max_steps`] schedule points —
    /// either the bound is too small for the workload or the scheduled
    /// code spins without bound (not wait-free).
    StepBound {
        /// The configured bound that was exceeded.
        max_steps: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Deadlock { blocked } => {
                write!(f, "deadlock: no runnable virtual thread (blocked: {blocked:?})")
            }
            RunError::StepBound { max_steps } => {
                write!(f, "step bound exceeded: more than {max_steps} schedule points")
            }
        }
    }
}

/// Knobs for a scheduled run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Abort the run (with [`RunError::StepBound`]) after this many
    /// schedule points. A wait-free workload has a static bound; hitting
    /// this is itself evidence of a liveness bug.
    pub max_steps: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { max_steps: 200_000 }
    }
}

/// Everything observable about one scheduled run.
#[derive(Debug)]
pub struct RunResult {
    /// The vtid chosen at each schedule point, in order. Together with
    /// the strategy seed this is the replayable failing schedule.
    pub decisions: Vec<usize>,
    /// Number of schedule points taken.
    pub steps: usize,
    /// The event log — every atomic op plus thread-lifecycle edges, in
    /// execution order (see the module docs).
    pub trace: Vec<TraceEvent>,
    /// Virtual threads that unwound with an injected
    /// [`CrashSignal`] (in vtid order).
    pub crashed: Vec<usize>,
    /// `Some` if the scheduler aborted the run.
    pub error: Option<RunError>,
}

impl RunResult {
    /// The atomic operations of the trace, in execution order.
    pub fn ops(&self) -> impl Iterator<Item = &OpEvent> {
        self.trace.iter().filter_map(TraceEvent::as_op)
    }
}

/// Internal panic payload used to unwind parked virtual threads when the
/// run aborts. Never escapes [`run`].
struct SchedAbort;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Blocked joining the given vtid.
    Blocked(usize),
    Done,
}

struct VThread {
    status: Status,
    /// Unwound with a `CrashSignal`.
    crashed: bool,
    /// Unwound with a genuine (non-crash, non-abort) panic.
    panicked: bool,
}

struct RtState {
    threads: Vec<VThread>,
    /// The vtid currently holding the baton.
    current: usize,
    strategy: Box<dyn Strategy>,
    decisions: Vec<usize>,
    trace: Vec<TraceEvent>,
    /// Atomic-variable address → dense trace id (see [`OpEvent::loc`]).
    locs: HashMap<usize, usize>,
    steps: usize,
    max_steps: usize,
    error: Option<RunError>,
    /// Once set, every parked virtual thread unwinds with `SchedAbort`
    /// the next time it wakes, and no new schedule points are taken.
    aborted: bool,
}

/// Shared scheduler state for one run.
pub struct RtInner {
    state: Mutex<RtState>,
    cv: Condvar,
    os_handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<RtInner>, usize)>> = const { RefCell::new(None) };
}

/// The (runtime, vtid) of the calling OS thread, if it is a virtual
/// thread of an active scheduled run.
pub(crate) fn current() -> Option<(Arc<RtInner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn lock(rt: &RtInner) -> MutexGuard<'_, RtState> {
    rt.state.lock().unwrap_or_else(PoisonError::into_inner)
}

fn runnable_vtids(st: &RtState) -> Vec<usize> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, t)| t.status == Status::Runnable)
        .map(|(i, _)| i)
        .collect()
}

fn abort(rt: &RtInner, st: &mut RtState, error: Option<RunError>) {
    if st.error.is_none() {
        st.error = error;
    }
    st.aborted = true;
    rt.cv.notify_all();
}

/// Asks the strategy who runs next and records the decision.
fn choose(st: &mut RtState, from: usize, kind: PointKind, runnable: &[usize]) -> usize {
    debug_assert!(!runnable.is_empty());
    let choice = Choice { runnable, current: from, kind };
    let next = st.strategy.choose(&choice);
    debug_assert!(runnable.contains(&next), "strategy chose non-runnable vtid {next}");
    st.decisions.push(next);
    next
}

/// Parks the calling virtual thread until it holds the baton again (or
/// the run aborts, in which case it unwinds). Returns the state guard so
/// the caller can finish its bookkeeping while still serialized.
fn wait_for_baton<'rt>(
    rt: &'rt RtInner,
    mut st: MutexGuard<'rt, RtState>,
    vtid: usize,
) -> MutexGuard<'rt, RtState> {
    loop {
        if st.aborted {
            drop(st);
            std::panic::panic_any(SchedAbort);
        }
        if st.current == vtid {
            return st;
        }
        st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Dense id for the atomic variable at `addr` (see [`OpEvent::loc`]).
fn intern_loc(st: &mut RtState, addr: usize) -> usize {
    let next = st.locs.len();
    *st.locs.entry(addr).or_insert(next)
}

/// The schedule point: pick the next thread, hand over the baton if it
/// is someone else, and — once the baton is back — append the event.
/// Appending *after* the handoff is what makes the trace execution
/// order: the caller performs its hardware operation immediately after
/// this returns, with no intervening schedule point, while threads that
/// ran in between already appended theirs. Called with the baton held
/// (i.e. from the currently-running virtual thread).
fn schedule(rt: &RtInner, vtid: usize, kind: PointKind, ev: Option<TraceEvent>) {
    let mut st = lock(rt);
    if st.aborted {
        drop(st);
        std::panic::panic_any(SchedAbort);
    }
    debug_assert_eq!(st.current, vtid, "schedule point from a thread without the baton");
    st.steps += 1;
    if st.steps > st.max_steps {
        let max_steps = st.max_steps;
        abort(rt, &mut st, Some(RunError::StepBound { max_steps }));
        drop(st);
        std::panic::panic_any(SchedAbort);
    }
    let runnable = runnable_vtids(&st);
    let next = choose(&mut st, vtid, kind, &runnable);
    if next != vtid {
        st.current = next;
        rt.cv.notify_all();
        st = wait_for_baton(rt, st, vtid);
    }
    if let Some(mut e) = ev {
        if let TraceEvent::Op(op) = &mut e {
            // `loc` arrives as the raw address; intern it at append time
            // so ids follow first appearance in the (execution-order)
            // trace.
            op.loc = intern_loc(&mut st, op.loc);
        }
        st.trace.push(e);
    }
}

/// Schedule point for a facade atomic op (called by `crate::atomic`
/// shims). `addr` is the address of the atomic variable (interned to a
/// dense id), `failure` the failure ordering of a compare-exchange. A
/// no-op outside a scheduled run.
#[track_caller]
pub(crate) fn trace_point(
    atomic: &'static str,
    op: AtomicOp,
    ordering: Ordering,
    failure: Option<Ordering>,
    addr: usize,
) {
    if let Some((rt, vtid)) = current() {
        // With `#[track_caller]` on every facade shim between here and
        // user code, this is the workload's own call site — the key the
        // ordering-contract checker resolves against `wf-lint`'s
        // extracted site table.
        let caller = core::panic::Location::caller();
        let ev = OpEvent {
            vtid,
            atomic,
            op,
            ordering,
            loc: addr,
            failure_ordering: failure,
            cas_success: None,
            site_file: caller.file(),
            site_line: caller.line(),
        };
        schedule(&rt, vtid, PointKind::Atomic, Some(TraceEvent::Op(ev)));
    }
}

/// Records the outcome of the compare-exchange the calling thread just
/// performed. The caller still holds the baton (no schedule point has
/// intervened since its `trace_point`), so the last trace entry is its
/// own CAS event.
pub(crate) fn cas_outcome(success: bool) {
    if let Some((rt, vtid)) = current() {
        let mut st = lock(&rt);
        if let Some(TraceEvent::Op(e)) = st.trace.last_mut() {
            debug_assert_eq!(e.vtid, vtid, "CAS outcome for another thread's event");
            debug_assert_eq!(e.op, AtomicOp::CompareExchange);
            e.cas_success = Some(success);
        }
    }
}

/// Schedule point for a facade fence. A no-op outside a scheduled run.
pub(crate) fn fence_point(ordering: Ordering) {
    if let Some((rt, vtid)) = current() {
        schedule(&rt, vtid, PointKind::Atomic, Some(TraceEvent::Fence { vtid, ordering }));
    }
}

/// Voluntary yield point (facade `yield_now`, and the failpoint `Yield`
/// action, whose `waitfree-faults` implementation calls the facade).
pub(crate) fn yield_point() {
    if let Some((rt, vtid)) = current() {
        schedule(&rt, vtid, PointKind::Yield, None);
    }
}

/// Registers a new virtual thread and spawns its backing OS thread. The
/// child does not execute a single instruction of `f` until the strategy
/// first hands it the baton. Called by the facade `spawn` from inside a
/// run; the spawn itself is a schedule point (the strategy may switch to
/// the child immediately).
pub(crate) fn spawn_virtual<F, T>(rt: &Arc<RtInner>, parent: usize, f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: Arc<Mutex<Option<thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let vtid = {
        let mut st = lock(rt);
        if st.aborted {
            drop(st);
            std::panic::panic_any(SchedAbort);
        }
        st.threads.push(VThread { status: Status::Runnable, crashed: false, panicked: false });
        let vtid = st.threads.len() - 1;
        // Registration is when the spawn edge exists (the child cannot
        // have executed anything yet), so the event goes in here, not at
        // the schedule point below — the strategy may run the child
        // first.
        st.trace.push(TraceEvent::Spawn { parent, child: vtid });
        vtid
    };
    let os = {
        let rt = Arc::clone(rt);
        let result = Arc::clone(&result);
        thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Wait for our first baton before touching `f`.
                drop(wait_for_baton(&rt, lock(&rt), vtid));
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), vtid)));
                f()
            }));
            CURRENT.with(|c| *c.borrow_mut() = None);
            let crashed = matches!(&outcome, Err(p) if p.is::<CrashSignal>());
            let aborted = matches!(&outcome, Err(p) if p.is::<SchedAbort>());
            let panicked = outcome.is_err() && !crashed && !aborted;
            *result.lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            vthread_exit(&rt, vtid, crashed, panicked);
        })
    };
    rt.os_handles.lock().unwrap_or_else(PoisonError::into_inner).push(os);
    schedule(rt, parent, PointKind::Spawn, None);
    JoinHandle::virtual_handle(Arc::clone(rt), vtid, result)
}

/// Exit protocol: mark the thread terminal, wake its joiners, and hand
/// the baton onward (or finish/deadlock the run).
fn vthread_exit(rt: &RtInner, vtid: usize, crashed: bool, panicked: bool) {
    let mut st = lock(rt);
    st.trace.push(TraceEvent::Exit { vtid });
    st.threads[vtid].status = Status::Done;
    st.threads[vtid].crashed = crashed;
    st.threads[vtid].panicked = panicked;
    for t in st.threads.iter_mut() {
        if t.status == Status::Blocked(vtid) {
            t.status = Status::Runnable;
        }
    }
    if panicked {
        // A genuine panic anywhere poisons the whole run: abort so the
        // driver can surface it instead of running the remainder of the
        // schedule against broken state.
        abort(rt, &mut st, None);
        return;
    }
    if st.aborted {
        rt.cv.notify_all();
        return;
    }
    let runnable = runnable_vtids(&st);
    if runnable.is_empty() {
        if st.threads.iter().any(|t| t.status != Status::Done) {
            let blocked = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                .map(|(i, _)| i)
                .collect();
            abort(rt, &mut st, Some(RunError::Deadlock { blocked }));
        } else {
            // All threads exited: the run is complete; wake the driver.
            rt.cv.notify_all();
        }
        return;
    }
    let next = choose(&mut st, vtid, PointKind::Exit, &runnable);
    st.current = next;
    rt.cv.notify_all();
}

/// Join on a virtual thread. From inside the same run this is a blocking
/// schedule point; from outside (e.g. after `run` returned) it just
/// waits for the target to be terminal and takes the result.
pub(crate) fn join_virtual<T>(
    rt: &Arc<RtInner>,
    target: usize,
    result: &Mutex<Option<thread::Result<T>>>,
) -> thread::Result<T> {
    let me = match current() {
        Some((cur_rt, me)) if Arc::ptr_eq(&cur_rt, rt) => Some(me),
        _ => None,
    };
    match me {
        Some(me) => {
            let mut st = lock(rt);
            if st.aborted {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.threads[target].status != Status::Done {
                st.threads[me].status = Status::Blocked(target);
                let runnable = runnable_vtids(&st);
                if runnable.is_empty() {
                    let blocked = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| matches!(t.status, Status::Blocked(_)))
                        .map(|(i, _)| i)
                        .collect();
                    abort(rt, &mut st, Some(RunError::Deadlock { blocked }));
                    drop(st);
                    std::panic::panic_any(SchedAbort);
                }
                let next = choose(&mut st, me, PointKind::Block, &runnable);
                st.current = next;
                rt.cv.notify_all();
                st = wait_for_baton(rt, st, me);
            }
            st.trace.push(TraceEvent::Join { joiner: me, target });
        }
        None => {
            let mut st = lock(rt);
            while st.threads[target].status != Status::Done {
                st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
    result
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("virtual thread result stored before exit")
}

/// Runs `f` as virtual thread 0 under `strategy`, returning the full
/// decision/trace record once every virtual thread has exited.
///
/// `f` executes on the calling OS thread; facade `spawn` calls inside it
/// create further virtual threads. A genuine panic in any virtual thread
/// (assertion failure etc. — not an injected `CrashSignal`) aborts the
/// run and is re-thrown here.
pub fn run<S, F>(strategy: S, opts: RunOptions, f: F) -> RunResult
where
    S: Strategy + 'static,
    F: FnOnce(),
{
    assert!(current().is_none(), "nested scheduled runs are not supported");
    let rt = Arc::new(RtInner {
        state: Mutex::new(RtState {
            threads: vec![VThread { status: Status::Runnable, crashed: false, panicked: false }],
            current: 0,
            strategy: Box::new(strategy),
            decisions: Vec::new(),
            trace: Vec::new(),
            locs: HashMap::new(),
            steps: 0,
            max_steps: opts.max_steps,
            error: None,
            aborted: false,
        }),
        cv: Condvar::new(),
        os_handles: Mutex::new(Vec::new()),
    });

    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt), 0)));
    let outcome = catch_unwind(AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);

    let crashed = matches!(&outcome, Err(p) if p.is::<CrashSignal>());
    let aborted = matches!(&outcome, Err(p) if p.is::<SchedAbort>());
    let panicked = outcome.is_err() && !crashed && !aborted;
    vthread_exit(&rt, 0, crashed, panicked);

    // Wait for every virtual thread to reach its exit protocol, then
    // reap the backing OS threads.
    {
        let mut st = lock(&rt);
        while st.threads.iter().any(|t| t.status != Status::Done) {
            st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let handles: Vec<_> =
        rt.os_handles.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
    for h in handles {
        // The wrapper catches every unwind, so the OS thread itself
        // never dies panicking.
        let _ = h.join();
    }

    if let Err(payload) = outcome {
        if panicked {
            resume_unwind(payload);
        }
    }

    let mut st = lock(&rt);
    if st.threads.iter().any(|t| t.panicked) {
        // A child panicked but nobody joined it: surface the bug rather
        // than return a result that looks clean.
        let vtids: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.panicked)
            .map(|(i, _)| i)
            .collect();
        panic!("virtual thread(s) {vtids:?} panicked during the scheduled run");
    }
    RunResult {
        decisions: mem::take(&mut st.decisions),
        steps: st.steps,
        trace: mem::take(&mut st.trace),
        crashed: st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.crashed)
            .map(|(i, _)| i)
            .collect(),
        error: st.error.take(),
    }
}
