//! History recorder: collects invoke/response events from scheduled
//! runs into a `waitfree-model` [`History`] for the linearizability
//! checker.
//!
//! The recorder is shared by cloning (an `Arc` inside); each virtual
//! thread records under its own [`Pid`]. The internal lock is never held
//! across a schedule point — `invoke`/`respond` only push one event —
//! so recording does not perturb the explored interleavings, and an
//! injected crash between an invoke and its respond simply leaves the
//! operation pending (which [`PendingPolicy::MayTakeEffect`]
//! (`waitfree_model::PendingPolicy`) then treats correctly: the crashed
//! operation may or may not have taken effect).

use std::sync::{Arc, Mutex, PoisonError};

use waitfree_model::{History, ObjectSpec, Pid};

/// A cloneable recorder of one concurrent history over the object
/// specification `S`.
#[derive(Debug)]
pub struct HistoryRecorder<S: ObjectSpec> {
    inner: Arc<Mutex<History<S::Op, S::Resp>>>,
}

impl<S: ObjectSpec> Clone for HistoryRecorder<S> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<S: ObjectSpec> Default for HistoryRecorder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: ObjectSpec> HistoryRecorder<S> {
    /// An empty recorder.
    pub fn new() -> Self {
        Self { inner: Arc::new(Mutex::new(History::new())) }
    }

    /// Record that `pid` invoked `op`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` already has a pending invocation (each virtual
    /// thread must record under its own pid).
    pub fn invoke(&self, pid: Pid, op: S::Op) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).invoke(pid, op);
    }

    /// Record that `pid` received `resp`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` has no pending invocation.
    pub fn respond(&self, pid: Pid, resp: S::Resp) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .respond(pid, resp)
            .expect("respond without a pending invocation");
    }

    /// Record `op`, run `f` (the real concurrent operation), record and
    /// return its response. If `f` unwinds — e.g. an injected crash —
    /// the operation stays pending in the history.
    pub fn record(&self, pid: Pid, op: S::Op, f: impl FnOnce() -> S::Resp) -> S::Resp {
        self.invoke(pid, op);
        let resp = f();
        self.respond(pid, resp.clone());
        resp
    }

    /// A snapshot of the recorded history.
    pub fn snapshot(&self) -> History<S::Op, S::Resp> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }
}
