//! The injected-crash panic payload, shared by the fault layer and the
//! scheduler.
//!
//! `waitfree-faults` unwinds a thread with a [`CrashSignal`] when a
//! `FaultAction::Crash` fires; the deterministic scheduler downcasts the
//! panic payload to this type to tell an injected halt-failure apart
//! from a genuine assertion failure. The type lives here (the bottom of
//! the instrumentation stack) so `waitfree-faults` can depend on the
//! atomics/thread facade without a crate cycle; `waitfree_faults::
//! failpoints::CrashSignal` re-exports it, so existing callers compile
//! unchanged.

/// The panic payload of a `FaultAction::Crash`. Harnesses downcast the
/// `catch_unwind` payload to this type to distinguish an injected
/// halt-failure from a genuine test failure.
#[derive(Clone, Debug)]
pub struct CrashSignal {
    /// The site that crashed the thread.
    pub site: String,
    /// The harness thread id, if one was set.
    pub tid: Option<usize>,
}
