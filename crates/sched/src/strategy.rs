//! Scheduling strategies: who runs next at each schedule point.
//!
//! All strategies are deterministic functions of their construction
//! parameters (seed, script, DFS prefix), so a failing run is replayed
//! by constructing the same strategy again — the seed plus the recorded
//! decision trace *is* the failing schedule.
//!
//! * [`RandomWalk`] — uniform choice among runnable threads at every
//!   point. Good breadth, no guarantees.
//! * [`Pct`] — PCT priority scheduling (Burckhardt et al.): random
//!   per-thread priorities, `depth - 1` random change points; finds any
//!   bug of depth `d` with probability ≥ 1/(n·k^(d-1)) per run.
//! * [`Dfs`] — bounded exhaustive enumeration of schedules for tiny
//!   configs, with an optional preemption bound.
//! * [`Script`] — a fixed decision list, for pinning one exact
//!   interleaving as a regression test.
//! * [`OpRandom`] — random at voluntary points only (spawn/yield/
//!   block/exit), never preempting at atomic ops. Decisions then happen
//!   at *operation* granularity, which is implementation-independent —
//!   the basis of the cross-implementation equivalence tests.

use std::sync::{Arc, Mutex, PoisonError};

use crate::rng::DetRng;

/// Why the scheduler is asking for a decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointKind {
    /// Before a facade atomic operation.
    Atomic,
    /// A voluntary `yield_now` (including injected `Yield` faults).
    Yield,
    /// After registering a newly spawned virtual thread.
    Spawn,
    /// The current thread is blocking on a join.
    Block,
    /// The current thread has exited.
    Exit,
}

/// One scheduling decision to make.
#[derive(Clone, Copy, Debug)]
pub struct Choice<'a> {
    /// Runnable virtual threads, ascending vtid. Never empty.
    pub runnable: &'a [usize],
    /// The thread that reached the schedule point (it may not be in
    /// `runnable` for [`PointKind::Block`]/[`PointKind::Exit`] points).
    pub current: usize,
    /// What kind of point this is.
    pub kind: PointKind,
}

/// A scheduling strategy. `Send` because the scheduler state (and thus
/// the strategy) is consulted from whichever OS thread holds the baton.
pub trait Strategy: Send {
    /// Picks the next thread to run; must return a member of
    /// `c.runnable`.
    fn choose(&mut self, c: &Choice<'_>) -> usize;
    /// Human-readable identity for failure reports (e.g.
    /// `"random-walk(seed=7)"`).
    fn describe(&self) -> String;
}

impl Strategy for Box<dyn Strategy> {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        (**self).choose(c)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
}

/// Uniform random choice among runnable threads at every schedule point.
pub struct RandomWalk {
    seed: u64,
    rng: DetRng,
}

impl RandomWalk {
    /// A random walk driven by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, rng: DetRng::new(seed) }
    }
}

impl Strategy for RandomWalk {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        c.runnable[self.rng.below(c.runnable.len())]
    }
    fn describe(&self) -> String {
        format!("random-walk(seed={})", self.seed)
    }
}

/// PCT priority scheduling: each virtual thread gets a random priority
/// on first sight; the highest-priority runnable thread always runs; at
/// `depth - 1` pre-drawn change points the running thread's priority
/// drops below everyone's. `est_steps` should over-approximate the run's
/// schedule-point count (change points are drawn uniformly from it).
pub struct Pct {
    seed: u64,
    depth: usize,
    est_steps: usize,
    rng: DetRng,
    /// Lazily assigned per-vtid priorities (higher runs first).
    priorities: Vec<u64>,
    change_points: Vec<usize>,
    step: usize,
    /// Next "below everyone" priority to hand out at a change point,
    /// descending so later drops go below earlier ones.
    next_low: u64,
}

impl Pct {
    /// PCT with the given seed, bug depth `depth` (≥ 1) and estimated
    /// schedule-point count.
    pub fn new(seed: u64, depth: usize, est_steps: usize) -> Self {
        let depth = depth.max(1);
        let mut rng = DetRng::new(seed);
        let change_points: Vec<usize> =
            (1..depth).map(|_| rng.below(est_steps.max(1))).collect();
        Self {
            seed,
            depth,
            est_steps,
            rng,
            priorities: Vec::new(),
            change_points,
            step: 0,
            next_low: depth as u64,
        }
    }

    fn ensure_priorities(&mut self, up_to: usize) {
        while self.priorities.len() <= up_to {
            // Initial priorities all sit above the change-point band
            // [1, depth]; collisions are broken by vtid (max_by_key
            // keeps the last maximum, but any fixed rule keeps the run
            // deterministic).
            let p = self.depth as u64 + 1 + self.rng.next_u64() % 1_000_000_007;
            self.priorities.push(p);
        }
    }
}

impl Strategy for Pct {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        let max_vtid = *c.runnable.last().expect("runnable never empty");
        self.ensure_priorities(max_vtid);
        let chosen = *c
            .runnable
            .iter()
            .max_by_key(|&&v| self.priorities[v])
            .expect("runnable never empty");
        self.step += 1;
        if self.change_points.contains(&self.step) && self.next_low > 0 {
            self.priorities[chosen] = self.next_low;
            self.next_low -= 1;
        }
        chosen
    }
    fn describe(&self) -> String {
        format!(
            "pct(seed={}, depth={}, est_steps={})",
            self.seed, self.depth, self.est_steps
        )
    }
}

/// Random at voluntary points (spawn/yield/block/exit), but *never*
/// preempts at an atomic op: the running thread continues until it
/// yields, blocks or exits, and crucially no randomness is consumed at
/// atomic points. Two implementations of the same interface that issue
/// the same operation sequence therefore see the *same* operation-level
/// schedule under the same seed, regardless of how many atomic
/// instructions each implementation uses internally — the property the
/// cross-implementation equivalence tests rely on.
pub struct OpRandom {
    seed: u64,
    rng: DetRng,
}

impl OpRandom {
    /// An operation-level random schedule driven by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed, rng: DetRng::new(seed) }
    }
}

impl Strategy for OpRandom {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        if c.kind == PointKind::Atomic && c.runnable.contains(&c.current) {
            return c.current;
        }
        c.runnable[self.rng.below(c.runnable.len())]
    }
    fn describe(&self) -> String {
        format!("op-random(seed={})", self.seed)
    }
}

/// A fixed decision list: at point `i` run `steps[i]` if runnable, else
/// the current thread if runnable, else the lowest runnable vtid. Past
/// the end of the list the fallback rule alone applies (continue the
/// current thread; on exit/block, lowest runnable first). Used to pin
/// one exact interleaving as a regression test.
pub struct Script {
    steps: Vec<usize>,
    pos: usize,
}

impl Script {
    /// A scripted schedule following `steps`.
    pub fn new(steps: Vec<usize>) -> Self {
        Self { steps, pos: 0 }
    }
}

impl Strategy for Script {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        let want = self.steps.get(self.pos).copied();
        self.pos += 1;
        if let Some(w) = want {
            if c.runnable.contains(&w) {
                return w;
            }
        }
        if c.runnable.contains(&c.current) {
            return c.current;
        }
        c.runnable[0]
    }
    fn describe(&self) -> String {
        format!("script({:?})", self.steps)
    }
}

/// Per-point record of one DFS run: (index chosen, number of
/// alternatives) over the *ordered* candidate list.
type DfsRecord = Arc<Mutex<Vec<(usize, usize)>>>;

/// Bounded exhaustive DFS over schedules. Enumerates decision prefixes
/// lexicographically: each run follows the current prefix, then takes
/// candidate 0 ("continue the current thread") everywhere after it; the
/// next prefix is the recorded run's longest branch point with an
/// untried alternative.
///
/// With `preemption_bound = Some(b)`, runs that already switched away
/// from a runnable current thread at `b` atomic points stop branching at
/// further atomic points (loom-style bounded search: most bugs need few
/// preemptions, and the schedule count drops from exponential in run
/// length to polynomial).
///
/// State-space caps are the caller's job: keep configs tiny (2–3
/// threads, 1–2 ops) and/or set a bound; `schedules()` reports how many
/// runs were handed out.
pub struct Dfs {
    prefix: Vec<usize>,
    last: DfsRecord,
    preemption_bound: Option<usize>,
    started: bool,
    exhausted: bool,
    schedules: usize,
}

impl Dfs {
    /// A DFS cursor; `preemption_bound` of `None` means a full
    /// exhaustive search.
    pub fn new(preemption_bound: Option<usize>) -> Self {
        Self {
            prefix: Vec::new(),
            last: Arc::new(Mutex::new(Vec::new())),
            preemption_bound,
            started: false,
            exhausted: false,
            schedules: 0,
        }
    }

    /// The strategy for the next unexplored schedule, or `None` once the
    /// (bounded) space is exhausted. Each returned strategy must drive
    /// one complete run before the next call.
    pub fn next_schedule(&mut self) -> Option<DfsStrategy> {
        if self.started {
            let rec = self.last.lock().unwrap_or_else(PoisonError::into_inner).clone();
            // Longest prefix ending in a branch point with an untried
            // alternative; bump it, drop everything after.
            let mut cut = rec.len();
            loop {
                if cut == 0 {
                    self.exhausted = true;
                    return None;
                }
                cut -= 1;
                if rec[cut].0 + 1 < rec[cut].1 {
                    break;
                }
            }
            self.prefix = rec[..cut].iter().map(|r| r.0).collect();
            self.prefix.push(rec[cut].0 + 1);
        }
        self.started = true;
        self.schedules += 1;
        self.last = Arc::new(Mutex::new(Vec::new()));
        Some(DfsStrategy {
            prefix: self.prefix.clone(),
            pos: 0,
            record: Arc::clone(&self.last),
            preemption_bound: self.preemption_bound,
            preemptions: 0,
        })
    }

    /// Whether the whole (bounded) schedule space has been explored.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Number of schedules handed out so far.
    pub fn schedules(&self) -> usize {
        self.schedules
    }
}

/// The per-run strategy handed out by [`Dfs::next_schedule`].
pub struct DfsStrategy {
    prefix: Vec<usize>,
    pos: usize,
    record: DfsRecord,
    preemption_bound: Option<usize>,
    preemptions: usize,
}

impl Strategy for DfsStrategy {
    fn choose(&mut self, c: &Choice<'_>) -> usize {
        let current_runnable = c.runnable.contains(&c.current);
        // Candidate order: continue the current thread first (index 0 =
        // "no preemption"), then the others by ascending vtid. Under an
        // exhausted preemption bound, atomic points stop branching.
        let bound_hit = self
            .preemption_bound
            .is_some_and(|b| self.preemptions >= b && current_runnable && c.kind == PointKind::Atomic);
        let mut cands: Vec<usize> = Vec::with_capacity(c.runnable.len());
        if bound_hit {
            cands.push(c.current);
        } else {
            if current_runnable {
                cands.push(c.current);
            }
            cands.extend(c.runnable.iter().copied().filter(|&v| v != c.current));
        }
        let idx = match self.prefix.get(self.pos) {
            Some(&i) => i.min(cands.len() - 1),
            None => 0,
        };
        let chosen = cands[idx];
        if c.kind == PointKind::Atomic && current_runnable && chosen != c.current {
            self.preemptions += 1;
        }
        self.record
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((idx, cands.len()));
        self.pos += 1;
        chosen
    }
    fn describe(&self) -> String {
        format!(
            "dfs(prefix={:?}, preemption_bound={:?})",
            self.prefix, self.preemption_bound
        )
    }
}
