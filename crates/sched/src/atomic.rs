//! Atomics facade: `std::sync::atomic` by default, instrumented shims
//! under the `sched` feature.
//!
//! With the feature off this module is nothing but `pub use` re-exports —
//! the types *are* the std types, so code written against the facade
//! compiles to exactly what it compiled to before the facade existed.
//!
//! With the feature on, each type wraps its std counterpart and calls
//! [`crate::runtime`]'s schedule point before performing the real
//! hardware operation. Outside a scheduled run the shims skip straight
//! to the hardware op, so ordinary `std::thread` tests keep working even
//! when the feature is enabled.
//!
//! The shims are sequentially-consistent at *schedule granularity*: the
//! scheduler explores interleavings of whole atomic operations, not weak
//! memory reorderings. Each operation's `Ordering` (and, for
//! compare-exchange, the failure ordering and the outcome) is recorded
//! in the run trace and passed through to the underlying std op
//! unchanged; the happens-before pass ([`crate::hb`]) replays the trace
//! and checks that every observed value is justified by those declared
//! orderings alone.
//!
//! Every traced method is `#[track_caller]`, so the trace records the
//! *workload's* source location for each op — the key that lets
//! [`crate::hb`] resolve observed synchronization edges against the
//! ordering contract `wf-lint` extracts from the audit comments.
//!
//! [`diag`] is the deliberate escape hatch for instrumentation-plane
//! atomics (fault registries, harness counters): plain std atomics in
//! both feature modes, never schedule points — see its docs.

#[cfg(not(feature = "sched"))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering,
};

#[cfg(feature = "sched")]
pub use instrumented::{fence, AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize};
#[cfg(feature = "sched")]
pub use std::sync::atomic::Ordering;

/// Instrumentation-plane atomics: always the raw std types, never
/// schedule points.
///
/// The failpoint registry, stress-harness counters and similar
/// diagnostics must not perturb the schedules being explored — a
/// registry check that were itself a schedule point would change every
/// interleaving whenever a test arms a site (the same principle that
/// keeps the history recorder's lock off the schedule-point graph).
/// Algorithm state never belongs here: the lint in `waitfree-analyze`
/// treats `diag` as part of the facade, so imports of it are allowed
/// workspace-wide, but anything whose interleavings should be *explored*
/// must use the instrumented types above.
pub mod diag {
    pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(feature = "sched")]
mod instrumented {
    use std::fmt;
    use std::sync::atomic::Ordering;

    use crate::runtime::{cas_outcome, fence_point, trace_point, AtomicOp};

    /// An atomic fence; a schedule point inside a scheduled run (traced
    /// as [`crate::runtime::TraceEvent::Fence`]), the std fence either
    /// way.
    pub fn fence(order: Ordering) {
        fence_point(order);
        std::sync::atomic::fence(order);
    }

    macro_rules! int_atomic {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty, $tag:literal) => {
        $(#[$meta])*
        #[derive(Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic holding `v`.
            pub const fn new(v: $prim) -> Self {
                Self { inner: <$std>::new(v) }
            }

            fn addr(&self) -> usize {
                self as *const Self as usize
            }

            /// Atomic load; a schedule point inside a scheduled run.
            #[track_caller]
            pub fn load(&self, order: Ordering) -> $prim {
                trace_point($tag, AtomicOp::Load, order, None, self.addr());
                self.inner.load(order)
            }

            /// Atomic store; a schedule point inside a scheduled run.
            #[track_caller]
            pub fn store(&self, val: $prim, order: Ordering) {
                trace_point($tag, AtomicOp::Store, order, None, self.addr());
                self.inner.store(val, order);
            }

            /// Atomic swap; a schedule point inside a scheduled run.
            #[track_caller]
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                trace_point($tag, AtomicOp::Swap, order, None, self.addr());
                self.inner.swap(val, order)
            }

            /// Atomic compare-exchange; a schedule point inside a
            /// scheduled run (the trace records both orderings and the
            /// outcome).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                trace_point($tag, AtomicOp::CompareExchange, success, Some(failure), self.addr());
                let r = self.inner.compare_exchange(current, new, success, failure);
                cas_outcome(r.is_ok());
                r
            }

            /// Atomic fetch-and-add; a schedule point inside a scheduled
            /// run.
            #[track_caller]
            pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                trace_point($tag, AtomicOp::FetchAdd, order, None, self.addr());
                self.inner.fetch_add(val, order)
            }

            /// Atomic fetch-and-sub; a schedule point inside a scheduled
            /// run.
            #[track_caller]
            pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                trace_point($tag, AtomicOp::FetchSub, order, None, self.addr());
                self.inner.fetch_sub(val, order)
            }

            /// Atomic fetch-and-max; a schedule point inside a scheduled
            /// run.
            #[track_caller]
            pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                trace_point($tag, AtomicOp::FetchMax, order, None, self.addr());
                self.inner.fetch_max(val, order)
            }

            /// Mutable access; no schedule point (requires `&mut self`,
            /// so no other thread can observe the access).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the contained value.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Not a schedule point: Debug formatting is diagnostic,
                // not part of the algorithm under test.
                fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
        };
    }

    int_atomic!(
        /// Instrumented stand-in for [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize,
        "AtomicUsize"
    );
    int_atomic!(
        /// Instrumented stand-in for [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64,
        "AtomicU64"
    );
    int_atomic!(
        /// Instrumented stand-in for [`std::sync::atomic::AtomicI64`].
        AtomicI64,
        std::sync::atomic::AtomicI64,
        i64,
        "AtomicI64"
    );

    /// Instrumented stand-in for [`std::sync::atomic::AtomicBool`].
    #[derive(Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic holding `v`.
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        /// Atomic load; a schedule point inside a scheduled run.
        #[track_caller]
        pub fn load(&self, order: Ordering) -> bool {
            trace_point("AtomicBool", AtomicOp::Load, order, None, self.addr());
            self.inner.load(order)
        }

        /// Atomic store; a schedule point inside a scheduled run.
        #[track_caller]
        pub fn store(&self, val: bool, order: Ordering) {
            trace_point("AtomicBool", AtomicOp::Store, order, None, self.addr());
            self.inner.store(val, order);
        }

        /// Atomic swap; a schedule point inside a scheduled run.
        #[track_caller]
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            trace_point("AtomicBool", AtomicOp::Swap, order, None, self.addr());
            self.inner.swap(val, order)
        }

        /// Atomic compare-exchange; a schedule point inside a scheduled
        /// run (the trace records both orderings and the outcome).
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            trace_point("AtomicBool", AtomicOp::CompareExchange, success, Some(failure), self.addr());
            let r = self.inner.compare_exchange(current, new, success, failure);
            cas_outcome(r.is_ok());
            r
        }

        /// Mutable access; no schedule point.
        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }

        /// Consumes the atomic, returning the contained value.
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }

    /// Instrumented stand-in for [`std::sync::atomic::AtomicPtr`].
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates a new atomic holding `p`.
        pub const fn new(p: *mut T) -> Self {
            Self { inner: std::sync::atomic::AtomicPtr::new(p) }
        }

        fn addr(&self) -> usize {
            self as *const Self as usize
        }

        /// Atomic load; a schedule point inside a scheduled run.
        #[track_caller]
        pub fn load(&self, order: Ordering) -> *mut T {
            trace_point("AtomicPtr", AtomicOp::Load, order, None, self.addr());
            self.inner.load(order)
        }

        /// Atomic store; a schedule point inside a scheduled run.
        #[track_caller]
        pub fn store(&self, ptr: *mut T, order: Ordering) {
            trace_point("AtomicPtr", AtomicOp::Store, order, None, self.addr());
            self.inner.store(ptr, order);
        }

        /// Atomic swap; a schedule point inside a scheduled run.
        #[track_caller]
        pub fn swap(&self, ptr: *mut T, order: Ordering) -> *mut T {
            trace_point("AtomicPtr", AtomicOp::Swap, order, None, self.addr());
            self.inner.swap(ptr, order)
        }

        /// Atomic compare-exchange; a schedule point inside a scheduled
        /// run (the trace records both orderings and the outcome).
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            trace_point("AtomicPtr", AtomicOp::CompareExchange, success, Some(failure), self.addr());
            let r = self.inner.compare_exchange(current, new, success, failure);
            cas_outcome(r.is_ok());
            r
        }

        /// Mutable access; no schedule point.
        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        /// Consumes the atomic, returning the contained pointer.
        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt::Debug::fmt(&self.inner, f)
        }
    }
}
