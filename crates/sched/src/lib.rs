//! # waitfree-sched
//!
//! Deterministic schedule exploration for the *real* atomics
//! implementations in `waitfree-sync`, in the tradition of loom and
//! shuttle: the same source that runs on hardware runs under a
//! cooperative scheduler that controls every interleaving, and the
//! histories it produces get machine-checked linearizability verdicts
//! from `waitfree-model`.
//!
//! The paper's theorems quantify over *all* interleavings; OS-thread
//! stress samples a biased sliver of them. This crate closes the gap
//! between the abstract explorer (`waitfree-explorer`, which exhausts
//! protocol automata) and hardware stress: it explores interleavings of
//! the actual implementation code.
//!
//! ## The facade
//!
//! [`atomic`] and [`thread`] mirror the std items the sync crate needs
//! (`AtomicUsize`/`AtomicU64`/`AtomicI64`/`AtomicBool`/`AtomicPtr`/
//! `Ordering`, `spawn`/`yield_now`/`JoinHandle`). Without the `sched`
//! cargo feature they are **pure re-exports of std** — zero new code,
//! zero cost; with it, every atomic op becomes a scheduling point of the
//! runtime in [`runtime`]. Code outside a scheduled run falls through to
//! the real operation either way.
//!
//! ## Exploration strategies
//!
//! All seed-replayable ([`strategy`]): uniform [`RandomWalk`], PCT
//! priority scheduling ([`Pct`]) with configurable bug depth, bounded
//! exhaustive [`Dfs`] for tiny configs, plus [`Script`] (pin one
//! interleaving as a regression test) and [`OpRandom`]
//! (operation-granularity schedules for cross-implementation
//! equivalence).
//!
//! ## Verdicts
//!
//! [`recorder::HistoryRecorder`] logs invoke/response events from a
//! scheduled run; [`lincheck::run_and_check`] feeds them to
//! `waitfree_model::linearize`; [`lincheck::campaign`] sweeps seed
//! ranges and prints every failing schedule (strategy, seed, decision
//! trace) for bit-for-bit replay via [`lincheck::replay`].
//!
//! ## Fault injection under the scheduler
//!
//! `waitfree-faults` failpoints compose with deterministic schedules:
//! an injected `Crash` unwinds the virtual thread (the run continues and
//! the crashed op is checked as pending), and an injected `Yield` calls
//! the facade's `yield_now`, which is a real schedule point inside a
//! run. `Stall` parks the backing OS thread outside the scheduler's
//! knowledge and would deadlock a one-runnable-at-a-time run — use
//! `Crash`/`Yield`/`SpinDelay` in scheduled scenarios. ([`crash`] and
//! [`rng`] live here, below the faults crate, so the faults machinery
//! can itself be built on the facade without a crate cycle.)
//!
//! ## Scope
//!
//! The scheduler *executes* interleavings of whole atomic operations
//! under sequential consistency — it does not generate weak-memory
//! reorderings (that is loom's territory). The gap is checked rather
//! than ignored: every operation's `Ordering` (and CAS failure
//! ordering/outcome) lands in the run trace in execution order, and the
//! happens-before pass in [`hb`] replays that trace to verify each
//! observed value is justified by the declared orderings alone, flagging
//! reads that only the SC serialization made safe.

#![warn(missing_docs)]

pub mod atomic;
pub mod crash;
pub mod rng;
pub mod thread;

#[cfg(feature = "sched")]
pub mod hb;
#[cfg(feature = "sched")]
pub mod lincheck;
#[cfg(feature = "sched")]
pub mod recorder;
#[cfg(feature = "sched")]
pub mod runtime;
#[cfg(feature = "sched")]
pub mod strategy;

#[cfg(feature = "sched")]
pub use hb::{
    check as hb_check, check_with_contract as hb_check_with_contract, Contract, HbReport,
    SiteSpec, UndeclaredEdge, Violation,
};
#[cfg(feature = "sched")]
pub use lincheck::{
    campaign, campaign_with, replay, run_and_check, run_and_check_with, CampaignReport,
    CheckedRun, Explore, FailingSchedule,
};
#[cfg(feature = "sched")]
pub use recorder::HistoryRecorder;
#[cfg(feature = "sched")]
pub use runtime::{run, AtomicOp, OpEvent, RunError, RunOptions, RunResult, TraceEvent};
#[cfg(feature = "sched")]
pub use strategy::{Choice, Dfs, DfsStrategy, OpRandom, Pct, PointKind, RandomWalk, Script, Strategy};

#[cfg(all(test, feature = "sched"))]
mod tests {
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    use crate::atomic::AtomicUsize;
    use crate::runtime::{run, RunError, RunOptions};
    use crate::strategy::{Dfs, OpRandom, Pct, RandomWalk, Script};
    use crate::thread;

    /// Two virtual threads race a non-atomic read-modify-write (facade
    /// load then store). Returns the final counter value: 2 if the
    /// increments serialized, 1 if the schedule interleaved them (the
    /// classic lost update).
    fn racy_increments(strategy: impl crate::Strategy + 'static) -> (usize, crate::RunResult) {
        let counter = Arc::new(AtomicUsize::new(0));
        let observed = Arc::new(AtomicUsize::new(0));
        let (c, o) = (Arc::clone(&counter), Arc::clone(&observed));
        let result = run(strategy, RunOptions::default(), move || {
            let js: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for j in js {
                j.join().unwrap();
            }
            let v = c.load(Ordering::SeqCst);
            o.store(v, Ordering::SeqCst);
        });
        (observed.load(Ordering::SeqCst), result)
    }

    #[test]
    fn facade_works_outside_a_run() {
        // No scheduler context: atomics and spawn fall through to std.
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let j = thread::spawn(move || a2.fetch_add(3, Ordering::SeqCst));
        j.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn same_seed_same_run() {
        let (v1, r1) = racy_increments(RandomWalk::new(42));
        let (v2, r2) = racy_increments(RandomWalk::new(42));
        assert_eq!(v1, v2);
        assert_eq!(r1.decisions, r2.decisions);
        assert_eq!(r1.trace, r2.trace);
        assert!(r1.error.is_none());
    }

    #[test]
    fn random_walk_finds_the_lost_update() {
        let outcomes: Vec<usize> = (0..64).map(|s| racy_increments(RandomWalk::new(s)).0).collect();
        assert!(outcomes.contains(&1), "some schedule interleaves the RMW");
        assert!(outcomes.contains(&2), "some schedule serializes the RMW");
    }

    #[test]
    fn pct_is_deterministic_and_finds_the_lost_update() {
        let (a, ra) = racy_increments(Pct::new(7, 3, 50));
        let (b, rb) = racy_increments(Pct::new(7, 3, 50));
        assert_eq!(a, b);
        assert_eq!(ra.decisions, rb.decisions);
        let outcomes: Vec<usize> =
            (0..64).map(|s| racy_increments(Pct::new(s, 3, 50)).0).collect();
        assert!(outcomes.contains(&1), "PCT hits the depth-2 lost update");
    }

    #[test]
    fn dfs_exhausts_the_toy_space_and_finds_both_outcomes() {
        let mut dfs = Dfs::new(None);
        let mut outcomes = std::collections::BTreeSet::new();
        let mut runs = 0;
        while let Some(s) = dfs.next_schedule() {
            outcomes.insert(racy_increments(s).0);
            runs += 1;
            assert!(runs < 10_000, "toy space must be small");
        }
        assert!(dfs.exhausted());
        assert_eq!(dfs.schedules(), runs);
        assert_eq!(outcomes, [1, 2].into_iter().collect(), "DFS sees every outcome");
    }

    #[test]
    fn dfs_preemption_bound_shrinks_the_space() {
        let count = |bound| {
            let mut dfs = Dfs::new(bound);
            let mut runs = 0;
            while let Some(s) = dfs.next_schedule() {
                let _ = racy_increments(s);
                runs += 1;
            }
            runs
        };
        let bounded = count(Some(1));
        let full = count(None);
        assert!(bounded < full, "bound {bounded} must cut below full {full}");
        assert!(bounded >= 1);
    }

    #[test]
    fn script_pins_one_interleaving() {
        // Empty script: fallback is run-to-completion, lowest vtid
        // first — fully sequential, so no lost update.
        let (v, r) = racy_increments(Script::new(vec![]));
        assert_eq!(v, 2);
        assert!(r.error.is_none());
    }

    #[test]
    fn op_random_never_preempts_at_atomics() {
        // Under operation-granularity schedules each spawned closure
        // (one load + one store, no voluntary yield between them) runs
        // atomically: the lost update is unreachable.
        for seed in 0..32 {
            let (v, _) = racy_increments(OpRandom::new(seed));
            assert_eq!(v, 2, "seed {seed} preempted inside an RMW");
        }
    }

    #[test]
    fn step_bound_aborts_spinning_runs() {
        let a = Arc::new(AtomicUsize::new(0));
        let result = run(RandomWalk::new(1), RunOptions { max_steps: 64 }, move || loop {
            if a.load(Ordering::SeqCst) == usize::MAX {
                break;
            }
        });
        assert_eq!(result.error, Some(RunError::StepBound { max_steps: 64 }));
    }

    #[test]
    fn injected_crash_is_contained_and_reported() {
        use crate::crash::CrashSignal;
        let result = run(RandomWalk::new(3), RunOptions::default(), || {
            let j = thread::spawn(|| {
                std::panic::panic_any(CrashSignal { site: "test::crash".into(), tid: Some(1) });
            });
            let err = j.join().expect_err("crashed thread joins as Err");
            assert!(err.is::<CrashSignal>());
        });
        assert!(result.error.is_none());
        assert_eq!(result.crashed, vec![1], "vtid 1 recorded as crashed");
    }

    #[test]
    fn genuine_panics_propagate() {
        let boom = std::panic::catch_unwind(|| {
            run(RandomWalk::new(5), RunOptions::default(), || {
                let j = thread::spawn(|| panic!("genuine bug"));
                let _ = j.join();
                // Joining does not swallow a genuine panic: the run
                // aborts and `run` re-raises from the driver below.
            });
        });
        assert!(boom.is_err(), "a genuine panic must escape run()");
    }
}
