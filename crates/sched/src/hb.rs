//! Happens-before checking over recorded schedules: a vector-clock pass
//! that replays a run's event log and verifies every observed value is
//! justified by a *declared* ordering edge, not by the SC scheduler's
//! accidental serialization.
//!
//! The scheduler executes whole atomic operations under sequential
//! consistency, so a `Relaxed` load always observes the latest write —
//! even where real hardware could legally return something older. That
//! gap is exactly how the PR-2 hint bug survived testing: the code was
//! correct under every explored schedule and wrong under the declared
//! orderings. This pass closes the gap mechanically. For each event it
//! maintains C++-style vector clocks built **only** from the orderings
//! the source declared:
//!
//! * a Release store (or the release half of an RMW / a `SeqCst` op)
//!   publishes the writer's clock on the location's *message clock*;
//! * an Acquire load (or acquire half) joins the message clock into the
//!   reader's clock;
//! * `Relaxed` creates no edge — a relaxed store *resets* the message
//!   clock (it starts a new release sequence with no head), while a
//!   relaxed RMW *carries* it forward (RMWs continue the release
//!   sequence, per C++20 §intro.races);
//! * release/acquire/`SeqCst` fences follow the fence rules (a release
//!   fence makes later relaxed stores publish the clock at the fence; an
//!   acquire fence upgrades earlier relaxed loads at the fence); `SeqCst`
//!   fences additionally join through a global SC clock;
//! * `spawn` copies the parent's clock to the child; `join` joins the
//!   target's final clock into the joiner.
//!
//! A **violation** is a load that observes a value written by another
//! thread which does *not* happen-before the load under those edges: the
//! SC interleaving guaranteed the visibility, the declared orderings did
//! not, and on weakly-ordered hardware the load may return a stale value.
//!
//! # Model limits (see DESIGN.md §10)
//!
//! * Per-op SC granularity: the pass judges the values the SC scheduler
//!   actually produced; it does not *generate* weak behaviours (no
//!   speculative/load-buffering execution), so it can miss bugs whose
//!   trigger value never occurs under SC. It can, however, never excuse
//!   an undeclared edge — which is the audit the ordering scheme needs.
//! * `SeqCst` operations are treated as `AcqRel`. The SC total order
//!   adds no same-location justification beyond release/acquire, so this
//!   loses nothing for value justification; cross-location SC reasoning
//!   (IRIW-style) is out of scope.
//! * Only plain loads are *judged*. RMW read halves (including
//!   successful CAS) are exempt: atomicity forces an RMW to read the
//!   tail of the modification order on any hardware, so the observed
//!   value needs no happens-before justification — but the acquire half
//!   still joins only what the declared ordering permits, so a later
//!   load that relies on data "published" through a too-weak RMW is
//!   still flagged. Failed `compare_exchange` observations are likewise
//!   exempt (the value only drives a retry, and the retry's own load is
//!   judged); the failure ordering's acquire edge, when declared, is
//!   still applied.

use std::collections::BTreeSet;
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::Ordering;

use crate::runtime::{AtomicOp, OpEvent, TraceEvent};

// ---------------------------------------------------------------------
// Ordering contracts (the static↔dynamic cross-validation input)
// ---------------------------------------------------------------------

/// One declared synchronization site from the extracted ordering
/// contract — the sched-side mirror of `waitfree-analyze`'s site table
/// (kept as its own type so the scheduler does not depend on the lint
/// crate; tests build it from `wf-lint --contract-json`'s source data).
#[derive(Clone, Debug)]
pub struct SiteSpec {
    /// The `site:` label, if the statement declared one.
    pub label: Option<String>,
    /// Workspace-relative, `/`-separated path of the declaring file.
    pub file: String,
    /// 1-based first line of the annotated statement.
    pub start: usize,
    /// 1-based last line of the annotated statement.
    pub end: usize,
    /// Labels this statement's acquire half may synchronize with.
    pub pairs: Vec<String>,
}

impl SiteSpec {
    /// Stable identity: the label when present, else `file:start`.
    #[must_use]
    pub fn id(&self) -> String {
        self.label.clone().unwrap_or_else(|| format!("{}:{}", self.file, self.start))
    }
}

/// The ordering contract a happens-before pass cross-validates against:
/// the declared sites plus the set of files the static pass covered.
///
/// An observed release→acquire edge is judged only when **both**
/// endpoints fall in covered files (edges into tests or the harness are
/// not part of the contract) and at least one side uses a weak
/// (non-`SeqCst`) ordering — an all-`SeqCst` protocol needs no pairing
/// declarations, its correctness does not rest on release/acquire
/// matching. A judged edge whose `(release site, acquire pairs)` do not
/// match is an [`UndeclaredEdge`]: the code synchronizes through a
/// channel the audit comments never declared, which is exactly the
/// class of drift the static lint alone cannot see.
#[derive(Clone, Debug, Default)]
pub struct Contract {
    /// Declared sites, in any order.
    pub sites: Vec<SiteSpec>,
    /// Workspace-relative paths of the files the static pass covered.
    pub files: Vec<String>,
}

impl Contract {
    /// Whether `file` (a `file!()`-style path) is covered by the
    /// contract. Matched on path suffix: inside a cargo workspace
    /// `file!()` already yields workspace-relative paths, but suffix
    /// matching keeps the check robust to a vendored path prefix.
    #[must_use]
    pub fn covers(&self, file: &str) -> bool {
        self.files.iter().any(|f| file.ends_with(f.as_str()) || f.ends_with(file))
    }

    /// The declared site whose statement contains `file:line`.
    #[must_use]
    pub fn site_of(&self, file: &str, line: usize) -> Option<&SiteSpec> {
        self.sites.iter().find(|s| {
            line >= s.start
                && line <= s.end
                && (file.ends_with(s.file.as_str()) || s.file.ends_with(file))
        })
    }

    /// Every declared `(release label, acquire site id)` pair.
    #[must_use]
    pub fn declared_pairs(&self) -> BTreeSet<(String, String)> {
        let mut set = BTreeSet::new();
        for s in &self.sites {
            for p in &s.pairs {
                set.insert((p.clone(), s.id()));
            }
        }
        set
    }
}

/// An observed synchronizes-with edge whose site pair the ordering
/// contract does not declare.
#[derive(Clone, Debug)]
pub struct UndeclaredEdge {
    /// Trace index of the acquire-side read.
    pub read_index: usize,
    /// Trace index of the release-side write whose clock was inherited.
    pub write_index: usize,
    /// `(file, line)` of the acquire-side call site.
    pub read_site: (String, u32),
    /// `(file, line)` of the release-side call site.
    pub write_site: (String, u32),
    /// Which declaration is missing.
    pub detail: String,
}

impl fmt::Display for UndeclaredEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "undeclared synchronization at trace[{}]: {}:{} acquires from {}:{} \
             (trace[{}]) but the ordering contract declares no such pair — {}",
            self.read_index,
            self.read_site.0,
            self.read_site.1,
            self.write_site.0,
            self.write_site.1,
            self.write_index,
            self.detail
        )
    }
}

/// A vector clock: `clock[t]` counts thread `t`'s events.
type Clock = Vec<u64>;

fn join(into: &mut Clock, other: &Clock) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

fn get(clock: &Clock, t: usize) -> u64 {
    clock.get(t).copied().unwrap_or(0)
}

fn bump(clock: &mut Clock, t: usize) -> u64 {
    if clock.len() <= t {
        clock.resize(t + 1, 0);
    }
    clock[t] += 1;
    clock[t]
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// A read that the declared orderings do not justify.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Index of the offending read in the trace.
    pub read_index: usize,
    /// The offending read (or RMW) event.
    pub read: OpEvent,
    /// Index of the observed write in the trace.
    pub write_index: usize,
    /// Thread that performed the observed write.
    pub write_vtid: usize,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hb violation at trace[{}]: vtid {} {:?} {}#{} ({:?}) observes trace[{}] by vtid {} \
             without a declared happens-before edge — {}",
            self.read_index,
            self.read.vtid,
            self.read.op,
            self.read.atomic,
            self.read.loc,
            self.read.ordering,
            self.write_index,
            self.write_vtid,
            self.detail
        )
    }
}

/// The verdict of a happens-before pass over one run's trace.
#[derive(Clone, Debug, Default)]
pub struct HbReport {
    /// Reads whose observed value only the SC serialization justifies.
    pub violations: Vec<Violation>,
    /// Number of read (or RMW) observations that were judged.
    pub reads_checked: usize,
    /// Observed edges the contract does not declare (empty when the
    /// pass ran without a contract). Deduplicated per `(read site,
    /// write site)` pair within a run.
    pub undeclared: Vec<UndeclaredEdge>,
    /// Declared `(release label, acquire site id)` pairs this run
    /// actually exercised — the coverage half of the cross-validation.
    pub exercised: BTreeSet<(String, String)>,
}

impl HbReport {
    /// Whether every judged observation had a declared edge and every
    /// observed synchronization was a declared pair.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.undeclared.is_empty()
    }
}

/// Per-location state: who wrote the current value, and the release-
/// sequence message clock an acquire read would synchronize with.
#[derive(Default)]
struct LocState {
    /// `(vtid, stamp, trace index)` of the write that produced the
    /// current value; `None` while the location still holds its initial
    /// value (initial values are visible to everyone — publication of
    /// the containing object is the constructor's problem, outside the
    /// trace).
    last_write: Option<(usize, u64, usize)>,
    /// The clock an acquire read currently synchronizes with; `None`
    /// when the current release sequence has no release head (e.g. after
    /// a plain relaxed store with no prior release fence).
    msg: Option<Clock>,
    /// Call sites of the writes whose clocks make up `msg` — the
    /// release-side endpoints an acquire of this location synchronizes
    /// with, for contract classification. Maintained in lockstep with
    /// `msg`: a release store resets the list to its own site, a
    /// release RMW appends, a relaxed RMW carries the list unchanged.
    /// (Fence-published relaxed writes attribute the edge to the write's
    /// own site; the fence that created it is adjacent in the same
    /// file, so contract coverage is unaffected.)
    contributors: Vec<Contributor>,
}

/// One release-side endpoint currently represented in a location's
/// message clock.
#[derive(Clone)]
struct Contributor {
    vtid: usize,
    file: &'static str,
    line: u32,
    index: usize,
    ordering: Ordering,
}

/// Per-thread state beyond the clock itself.
#[derive(Default, Clone)]
struct ThreadState {
    clock: Clock,
    /// Clock at the last release (or `SeqCst`) fence, if any: relaxed
    /// stores after it publish this.
    fence_rel: Option<Clock>,
    /// Accumulated message clocks of relaxed loads since the last
    /// acquire fence: an acquire (or `SeqCst`) fence joins this in.
    pending_acq: Clock,
    /// Final clock at exit, for join edges.
    exited: Option<Clock>,
}

/// Replays `trace` (a [`crate::runtime::RunResult::trace`]) and reports
/// every read observation the declared orderings fail to justify.
#[must_use]
pub fn check(trace: &[TraceEvent]) -> HbReport {
    check_with_contract(trace, None)
}

/// [`check`], additionally cross-validating every observed
/// release→acquire edge against an extracted ordering contract — see
/// [`Contract`] for which edges are judged and [`HbReport::undeclared`]
/// / [`HbReport::exercised`] for the two outputs.
#[must_use]
pub fn check_with_contract(trace: &[TraceEvent], contract: Option<&Contract>) -> HbReport {
    let mut threads: Vec<ThreadState> = Vec::new();
    let mut locs: HashMap<usize, LocState> = HashMap::new();
    // Global clock threaded through SeqCst fences only.
    let mut sc_fence_clock: Clock = Vec::new();
    let mut report = HbReport::default();
    let mut edges = EdgeCheck {
        contract,
        site_cache: HashMap::new(),
        seen: HashSet::new(),
    };

    fn ensure(threads: &mut Vec<ThreadState>, t: usize) {
        if threads.len() <= t {
            threads.resize(t + 1, ThreadState::default());
        }
    }

    for (i, ev) in trace.iter().enumerate() {
        match ev {
            TraceEvent::Spawn { parent, child } => {
                ensure(&mut threads, *parent.max(child));
                bump(&mut threads[*parent].clock, *parent);
                let parent_clock = threads[*parent].clock.clone();
                let c = &mut threads[*child];
                join(&mut c.clock, &parent_clock);
                bump(&mut c.clock, *child);
            }
            TraceEvent::Exit { vtid } => {
                ensure(&mut threads, *vtid);
                let t = &mut threads[*vtid];
                bump(&mut t.clock, *vtid);
                t.exited = Some(t.clock.clone());
            }
            TraceEvent::Join { joiner, target } => {
                ensure(&mut threads, *joiner.max(target));
                let target_clock = threads[*target]
                    .exited
                    .clone()
                    .unwrap_or_else(|| threads[*target].clock.clone());
                let j = &mut threads[*joiner];
                bump(&mut j.clock, *joiner);
                join(&mut j.clock, &target_clock);
            }
            TraceEvent::Fence { vtid, ordering } => {
                ensure(&mut threads, *vtid);
                let sc = *ordering == Ordering::SeqCst;
                let t = &mut threads[*vtid];
                bump(&mut t.clock, *vtid);
                if is_acquire(*ordering) {
                    let pending = std::mem::take(&mut t.pending_acq);
                    join(&mut t.clock, &pending);
                }
                if sc {
                    join(&mut t.clock, &sc_fence_clock);
                    let snap = t.clock.clone();
                    join(&mut sc_fence_clock, &snap);
                }
                if is_release(*ordering) {
                    t.fence_rel = Some(t.clock.clone());
                }
            }
            TraceEvent::Op(e) => {
                ensure(&mut threads, e.vtid);
                step_op(&mut threads, &mut locs, &mut report, &mut edges, i, e);
            }
        }
    }
    report
}

/// Contract-classification state threaded through [`step_op`].
struct EdgeCheck<'c> {
    contract: Option<&'c Contract>,
    /// `(file ptr+len, line) → site index` memo — site lookup is a
    /// linear scan over the contract, and hot loops hit the same few
    /// call sites thousands of times per trace.
    site_cache: HashMap<(usize, usize, u32), Option<usize>>,
    /// `(read site, write site)` pairs already reported, so a retry
    /// loop does not flood the report with one drifted annotation.
    seen: HashSet<(&'static str, u32, &'static str, u32)>,
}

impl EdgeCheck<'_> {
    fn site_idx(&mut self, file: &'static str, line: u32) -> Option<usize> {
        let contract = self.contract?;
        let key = (file.as_ptr() as usize, file.len(), line);
        *self.site_cache.entry(key).or_insert_with(|| {
            contract
                .sites
                .iter()
                .position(|s| s.site_of_match(file, line))
        })
    }

    /// Classify one observed release→acquire edge: record coverage when
    /// the pair is declared, report it when it is not (unless exempt).
    fn classify(&mut self, report: &mut HbReport, read_index: usize, e: &OpEvent, read_order: Ordering, c: &Contributor) {
        let Some(contract) = self.contract else { return };
        if !(contract.covers(e.site_file) && contract.covers(c.file)) {
            return;
        }
        let rel = self.site_idx(c.file, c.line);
        let acq = self.site_idx(e.site_file, e.site_line);
        let declared = match (rel, acq) {
            (Some(r), Some(a)) => {
                let (r, a) = (&contract.sites[r], &contract.sites[a]);
                match &r.label {
                    Some(label) if a.pairs.contains(label) => {
                        report.exercised.insert((label.clone(), a.id()));
                        true
                    }
                    _ => false,
                }
            }
            _ => false,
        };
        if declared {
            return;
        }
        // An all-SeqCst edge needs no pairing declaration: its
        // correctness rests on the SC total order, not on
        // release/acquire matching.
        if c.ordering == Ordering::SeqCst && read_order == Ordering::SeqCst {
            return;
        }
        if !self.seen.insert((e.site_file, e.site_line, c.file, c.line)) {
            return;
        }
        let detail = match (rel, acq) {
            (None, _) => "no `[site:]` declaration covers the release-side statement".into(),
            (Some(_), None) => "no `[pairs:]` declaration covers the acquire-side statement".into(),
            (Some(r), Some(a)) => match &contract.sites[r].label {
                None => "the release-side statement declares no `site:` label".into(),
                Some(label) => format!(
                    "the acquire side declares pairs {:?}, which do not include \
                     the release site `{label}`",
                    contract.sites[a].pairs
                ),
            },
        };
        report.undeclared.push(UndeclaredEdge {
            read_index,
            write_index: c.index,
            read_site: (e.site_file.to_string(), e.site_line),
            write_site: (c.file.to_string(), c.line),
            detail,
        });
    }
}

impl SiteSpec {
    fn site_of_match(&self, file: &str, line: u32) -> bool {
        let line = line as usize;
        line >= self.start
            && line <= self.end
            && (file.ends_with(self.file.as_str()) || self.file.ends_with(file))
    }
}

/// Kinds of access an [`AtomicOp`] performs on its location.
enum Access {
    Read,
    Write,
    ReadWrite,
}

fn access_of(e: &OpEvent) -> Access {
    match e.op {
        AtomicOp::Load => Access::Read,
        AtomicOp::Store => Access::Write,
        AtomicOp::CompareExchange => {
            // A failed CAS only reads (at the failure ordering).
            if e.cas_success == Some(false) {
                Access::Read
            } else {
                Access::ReadWrite
            }
        }
        AtomicOp::Swap | AtomicOp::FetchAdd | AtomicOp::FetchSub | AtomicOp::FetchMax => {
            Access::ReadWrite
        }
    }
}

fn step_op(
    threads: &mut [ThreadState],
    locs: &mut HashMap<usize, LocState>,
    report: &mut HbReport,
    edges: &mut EdgeCheck<'_>,
    index: usize,
    e: &OpEvent,
) {
    let access = access_of(e);
    let loc = locs.entry(e.loc).or_default();
    let failed_cas = matches!(e.op, AtomicOp::CompareExchange if e.cas_success == Some(false));
    // The ordering governing the read half: failure ordering for a
    // failed CAS, the op's ordering otherwise.
    let read_order = if failed_cas { e.failure_ordering.unwrap_or(e.ordering) } else { e.ordering };

    let stamp = bump(&mut threads[e.vtid].clock, e.vtid);

    // --- read half -----------------------------------------------------
    if matches!(access, Access::Read | Access::ReadWrite) {
        if is_acquire(read_order) {
            if let Some(msg) = &loc.msg {
                let msg = msg.clone();
                join(&mut threads[e.vtid].clock, &msg);
                // This acquire synchronizes with every release-side
                // contributor to the message clock: classify each
                // cross-thread edge against the contract (same-thread
                // "edges" are program order, not synchronization).
                for c in &loc.contributors {
                    if c.vtid != e.vtid {
                        edges.classify(report, index, e, read_order, c);
                    }
                }
            }
        } else if let Some(msg) = &loc.msg {
            // A relaxed load remembers the message clock: a later
            // acquire fence turns it into a real edge.
            let msg = msg.clone();
            join(&mut threads[e.vtid].pending_acq, &msg);
        }
        // Only plain loads are judged: RMWs read the modification-order
        // tail by atomicity (coherence justifies the value on any
        // hardware), and failed-CAS values only drive retries.
        if e.op == AtomicOp::Load {
            report.reads_checked += 1;
            if let Some((wt, wstamp, widx)) = loc.last_write {
                if wt != e.vtid && get(&threads[e.vtid].clock, wt) < wstamp {
                    report.violations.push(Violation {
                        read_index: index,
                        read: e.clone(),
                        write_index: widx,
                        write_vtid: wt,
                        detail: format!(
                            "the write is visible only because the scheduler serialized it \
                             first; with these orderings ({:?} read) the value could be stale \
                             on weakly-ordered hardware",
                            read_order
                        ),
                    });
                }
            }
        }
    }

    // --- write half ----------------------------------------------------
    if matches!(access, Access::Write | Access::ReadWrite) {
        let is_rmw = matches!(access, Access::ReadWrite) && e.op != AtomicOp::Store;
        let released = is_release(e.ordering);
        let fence_rel = threads[e.vtid].fence_rel.clone();
        let clock = threads[e.vtid].clock.clone();
        loc.msg = if released {
            // A release write heads (or, for an RMW, extends) the
            // release sequence with the writer's full clock.
            let mut m = if is_rmw { loc.msg.take().unwrap_or_default() } else { Clock::new() };
            join(&mut m, &clock);
            Some(m)
        } else {
            // Relaxed write: a store starts a sequence with no release
            // head; an RMW carries the existing sequence forward. A
            // prior release fence makes either publish the clock at the
            // fence.
            let base = if is_rmw { loc.msg.take() } else { None };
            match (base, fence_rel) {
                (None, None) => None,
                (b, f) => {
                    let mut m = b.unwrap_or_default();
                    if let Some(f) = f {
                        join(&mut m, &f);
                    }
                    Some(m)
                }
            }
        };
        // Keep the contributor list in lockstep with the message clock
        // (see `LocState::contributors`).
        let contrib = Contributor {
            vtid: e.vtid,
            file: e.site_file,
            line: e.site_line,
            index,
            ordering: e.ordering,
        };
        match (&loc.msg, released, is_rmw) {
            (None, ..) => loc.contributors.clear(),
            // Release store: a fresh sequence headed by this write.
            (Some(_), true, false) => loc.contributors = vec![contrib],
            // Release RMW: extends the sequence, adding itself.
            (Some(_), true, true) => loc.contributors.push(contrib),
            // Relaxed RMW carrying the sequence: contributors unchanged
            // (the RMW publishes nothing of its own; a prior release
            // fence's publication is attributed to this write's site).
            (Some(_), false, true) => {
                if threads[e.vtid].fence_rel.is_some() {
                    loc.contributors.push(contrib);
                }
            }
            // Fence-published relaxed store: the store's site is the
            // visible publisher.
            (Some(_), false, false) => loc.contributors = vec![contrib],
        }
        loc.last_write = Some((e.vtid, stamp, index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(
        vtid: usize,
        kind: AtomicOp,
        ordering: Ordering,
        loc: usize,
    ) -> TraceEvent {
        TraceEvent::Op(OpEvent {
            vtid,
            atomic: "AtomicUsize",
            op: kind,
            ordering,
            loc,
            failure_ordering: None,
            cas_success: None,
            site_file: "",
            site_line: 0,
        })
    }

    /// [`op`] with an explicit call site, for contract tests.
    fn op_at(
        vtid: usize,
        kind: AtomicOp,
        ordering: Ordering,
        loc: usize,
        site_file: &'static str,
        site_line: u32,
    ) -> TraceEvent {
        TraceEvent::Op(OpEvent {
            vtid,
            atomic: "AtomicUsize",
            op: kind,
            ordering,
            loc,
            failure_ordering: None,
            cas_success: None,
            site_file,
            site_line,
        })
    }

    fn cas(vtid: usize, success: bool, ordering: Ordering, failure: Ordering, loc: usize) -> TraceEvent {
        TraceEvent::Op(OpEvent {
            vtid,
            atomic: "AtomicUsize",
            op: AtomicOp::CompareExchange,
            ordering,
            loc,
            failure_ordering: Some(failure),
            cas_success: Some(success),
            site_file: "",
            site_line: 0,
        })
    }

    fn spawn(parent: usize, child: usize) -> TraceEvent {
        TraceEvent::Spawn { parent, child }
    }

    fn fence(vtid: usize, ordering: Ordering) -> TraceEvent {
        TraceEvent::Fence { vtid, ordering }
    }

    /// Classic message passing: T1 writes data (relaxed), publishes a
    /// flag with Release; T2 acquires the flag, reads the data relaxed.
    /// Every observation is justified.
    #[test]
    fn release_acquire_message_passing_is_clean() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0), // data
            op(1, AtomicOp::Store, Ordering::Release, 1), // flag
            op(2, AtomicOp::Load, Ordering::Acquire, 1),  // sees flag
            op(2, AtomicOp::Load, Ordering::Relaxed, 0),  // data: justified
        ];
        let report = check(&trace);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.reads_checked, 2);
    }

    /// Same shape, but the flag is published with Relaxed: the data read
    /// AND the flag read are only justified by SC serialization.
    #[test]
    fn relaxed_publication_is_flagged() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0),
            op(1, AtomicOp::Store, Ordering::Relaxed, 1), // relaxed publish
            op(2, AtomicOp::Load, Ordering::Acquire, 1),  // no edge to inherit
            op(2, AtomicOp::Load, Ordering::Relaxed, 0),
        ];
        let report = check(&trace);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert_eq!(report.violations[0].read_index, 4);
        assert_eq!(report.violations[1].read_index, 5);
        assert_eq!(report.violations[0].write_vtid, 1);
    }

    /// An acquire load that observes a write from a thread it already
    /// synchronized with (here: the spawner) is justified even when the
    /// store was relaxed.
    #[test]
    fn program_order_and_spawn_edges_justify_reads() {
        let trace = vec![
            op(0, AtomicOp::Store, Ordering::Relaxed, 0),
            spawn(0, 1),
            op(1, AtomicOp::Load, Ordering::Relaxed, 0), // parent's write: spawn edge
            op(1, AtomicOp::Load, Ordering::Relaxed, 0),
        ];
        let report = check(&trace);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    /// Fence-based message passing (C++20 fence rules): relaxed store
    /// after a release fence, relaxed load upgraded by an acquire fence.
    #[test]
    fn release_and_acquire_fences_create_the_edge() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0), // data
            fence(1, Ordering::Release),
            op(1, AtomicOp::Store, Ordering::Relaxed, 1), // flag, after the fence
            op(2, AtomicOp::Load, Ordering::Relaxed, 1),  // unjustified by itself
            fence(2, Ordering::Acquire),
            op(2, AtomicOp::Load, Ordering::Relaxed, 0), // justified via the fences
        ];
        let report = check(&trace);
        // The flag load itself races (no acquire at the load, and the
        // fence only helps *later* reads); the data read is clean.
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].read_index, 5);
    }

    /// SeqCst fences on both sides create an edge through the global SC
    /// order even with relaxed accesses.
    #[test]
    fn seqcst_fences_synchronize_through_the_sc_order() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0),
            fence(1, Ordering::SeqCst),
            fence(2, Ordering::SeqCst),
            op(2, AtomicOp::Load, Ordering::Relaxed, 0), // justified: fence pair
        ];
        let report = check(&trace);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    /// A release RMW continues the release sequence: an acquire read of
    /// the RMW's value inherits both the original release head and the
    /// RMW writer's clock.
    #[test]
    fn release_rmw_extends_the_release_sequence() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            spawn(0, 3),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0),    // T1 data
            op(1, AtomicOp::Store, Ordering::Release, 1),    // T1 heads the sequence
            op(2, AtomicOp::Store, Ordering::Relaxed, 2),    // T2 data
            op(2, AtomicOp::FetchMax, Ordering::Release, 1), // T2 extends it
            op(3, AtomicOp::Load, Ordering::Acquire, 1),
            op(3, AtomicOp::Load, Ordering::Relaxed, 0), // justified via T1's head
            op(3, AtomicOp::Load, Ordering::Relaxed, 2), // justified via T2's RMW
        ];
        let report = check(&trace);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    /// A *relaxed* RMW keeps the sequence alive but contributes no clock
    /// of its own: readers that rely on the RMW writer's prior work are
    /// flagged.
    #[test]
    fn relaxed_rmw_carries_but_does_not_publish() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0),    // T1 data
            op(1, AtomicOp::FetchMax, Ordering::Relaxed, 1), // relaxed publish (the PR-2 bug shape)
            op(2, AtomicOp::Load, Ordering::Acquire, 1),     // nothing to acquire
            op(2, AtomicOp::Load, Ordering::Relaxed, 0),
        ];
        let report = check(&trace);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
    }

    /// CAS read-halves are never judged — failed ones only drive a
    /// retry, successful ones read the modification-order tail by
    /// atomicity — but a plain load observing the too-weak CAS's write
    /// from a third thread is.
    #[test]
    fn cas_reads_are_exempt_plain_loads_are_judged() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            spawn(0, 3),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0),
            cas(2, false, Ordering::Release, Ordering::Relaxed, 0), // exempt
            cas(2, true, Ordering::Relaxed, Ordering::Relaxed, 0),  // exempt (coherence)
            op(3, AtomicOp::Load, Ordering::Relaxed, 0),            // judged: flagged
        ];
        let report = check(&trace);
        assert_eq!(report.reads_checked, 1);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].read_index, 6);
        assert_eq!(report.violations[0].write_vtid, 2);
    }

    /// Reads of a location's initial value are always justified.
    #[test]
    fn initial_values_are_justified() {
        let trace = vec![
            spawn(0, 1),
            op(1, AtomicOp::Load, Ordering::Relaxed, 7),
        ];
        let report = check(&trace);
        assert!(report.is_clean());
        assert_eq!(report.reads_checked, 1);
    }

    /// Join edges justify reading everything the joined thread wrote.
    #[test]
    fn join_edge_justifies_reads() {
        let trace = vec![
            spawn(0, 1),
            op(1, AtomicOp::Store, Ordering::Relaxed, 0),
            TraceEvent::Exit { vtid: 1 },
            TraceEvent::Join { joiner: 0, target: 1 },
            op(0, AtomicOp::Load, Ordering::Relaxed, 0),
        ];
        let report = check(&trace);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    /// A relaxed store by a *third* thread breaks the release sequence:
    /// later acquire readers get no edge to the new writer.
    #[test]
    fn relaxed_store_resets_the_release_sequence() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op(1, AtomicOp::Store, Ordering::Release, 1),
            op(2, AtomicOp::Store, Ordering::Relaxed, 1), // breaks the head
            op(0, AtomicOp::Load, Ordering::Acquire, 1),
        ];
        let report = check(&trace);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].write_vtid, 2);
    }

    // -- contract cross-validation ------------------------------------

    const F: &str = "crates/sync/src/m.rs";

    fn contract(sites: Vec<SiteSpec>) -> Contract {
        Contract { sites, files: vec![F.to_string()] }
    }

    fn site(label: Option<&str>, start: usize, end: usize, pairs: &[&str]) -> SiteSpec {
        SiteSpec {
            label: label.map(str::to_string),
            file: F.to_string(),
            start,
            end,
            pairs: pairs.iter().map(|p| p.to_string()).collect(),
        }
    }

    /// A declared release→acquire pair is recorded as exercised and
    /// nothing is flagged.
    #[test]
    fn declared_edges_are_exercised_not_flagged() {
        let c = contract(vec![
            site(Some("m.pub"), 10, 10, &[]),
            site(None, 20, 20, &["m.pub"]),
        ]);
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op_at(1, AtomicOp::Store, Ordering::Release, 0, F, 10),
            op_at(2, AtomicOp::Load, Ordering::Acquire, 0, F, 20),
        ];
        let r = check_with_contract(&trace, Some(&c));
        assert!(r.is_clean(), "{:?}", r.undeclared);
        assert_eq!(r.exercised.len(), 1);
        let (rel, acq) = r.exercised.iter().next().unwrap();
        assert_eq!(rel, "m.pub");
        assert_eq!(acq, &format!("{F}:20"));
    }

    /// An edge whose acquire side does not name the release site is an
    /// undeclared-synchronization failure, and `is_clean` reflects it.
    #[test]
    fn unpaired_acquire_is_flagged() {
        let c = contract(vec![
            site(Some("m.pub"), 10, 10, &[]),
            site(Some("m.other"), 30, 30, &[]),
            site(None, 20, 20, &["m.other"]),
        ]);
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op_at(1, AtomicOp::Store, Ordering::Release, 0, F, 10),
            op_at(2, AtomicOp::Load, Ordering::Acquire, 0, F, 20),
        ];
        let r = check_with_contract(&trace, Some(&c));
        assert!(!r.is_clean());
        assert_eq!(r.undeclared.len(), 1, "{:?}", r.undeclared);
        assert_eq!(r.undeclared[0].write_site, (F.to_string(), 10));
        assert!(r.undeclared[0].detail.contains("m.pub"), "{}", r.undeclared[0].detail);
        assert!(r.exercised.is_empty());
    }

    /// An acquire site with no annotation at all (not in the site
    /// table) is flagged too — the mutant-catch mechanism: mutant-gated
    /// statements are absent from the default contract.
    #[test]
    fn unannotated_acquire_site_is_flagged() {
        let c = contract(vec![site(Some("m.pub"), 10, 10, &[])]);
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op_at(1, AtomicOp::Store, Ordering::Release, 0, F, 10),
            op_at(2, AtomicOp::Load, Ordering::Acquire, 0, F, 20),
        ];
        let r = check_with_contract(&trace, Some(&c));
        assert_eq!(r.undeclared.len(), 1, "{:?}", r.undeclared);
        assert!(r.undeclared[0].detail.contains("[pairs:]"), "{}", r.undeclared[0].detail);
    }

    /// Edges with an endpoint outside the contract's files (tests, the
    /// harness) and all-SeqCst edges are not judged.
    #[test]
    fn foreign_and_all_seqcst_edges_are_exempt() {
        let c = contract(vec![]);
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            // Release side in an uncovered file (a test body).
            op_at(1, AtomicOp::Store, Ordering::Release, 0, "tests/t.rs", 5),
            op_at(2, AtomicOp::Load, Ordering::Acquire, 0, F, 20),
            // All-SeqCst handshake inside the covered file.
            op_at(1, AtomicOp::Store, Ordering::SeqCst, 1, F, 40),
            op_at(2, AtomicOp::Load, Ordering::SeqCst, 1, F, 41),
        ];
        let r = check_with_contract(&trace, Some(&c));
        assert!(r.undeclared.is_empty(), "{:?}", r.undeclared);
    }

    /// A release RMW extending a declared sequence is classified per
    /// contributor: the acquire must pair with *every* release site
    /// whose clock it inherits.
    #[test]
    fn each_contributor_is_classified() {
        let c = contract(vec![
            site(Some("m.head"), 10, 10, &[]),
            site(Some("m.ext"), 11, 11, &[]),
            site(None, 20, 20, &["m.head"]), // misses m.ext
        ]);
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            spawn(0, 3),
            op_at(1, AtomicOp::Store, Ordering::Release, 0, F, 10),
            op_at(2, AtomicOp::FetchAdd, Ordering::Release, 0, F, 11),
            op_at(3, AtomicOp::Load, Ordering::Acquire, 0, F, 20),
        ];
        let r = check_with_contract(&trace, Some(&c));
        assert_eq!(r.exercised.len(), 1, "{:?}", r.exercised);
        assert_eq!(r.undeclared.len(), 1, "{:?}", r.undeclared);
        assert_eq!(r.undeclared[0].write_site.1, 11);
    }

    /// Repeated occurrences of the same undeclared pair (a retry loop)
    /// are reported once.
    #[test]
    fn undeclared_edges_are_deduplicated() {
        let c = contract(vec![]);
        let mut trace = vec![spawn(0, 1), spawn(0, 2)];
        for _ in 0..5 {
            trace.push(op_at(1, AtomicOp::Store, Ordering::Release, 0, F, 10));
            trace.push(op_at(2, AtomicOp::Load, Ordering::Acquire, 0, F, 20));
        }
        let r = check_with_contract(&trace, Some(&c));
        assert_eq!(r.undeclared.len(), 1, "{:?}", r.undeclared);
    }

    /// Without a contract, `check` behaves exactly as before.
    #[test]
    fn no_contract_means_no_edge_judgement() {
        let trace = vec![
            spawn(0, 1),
            spawn(0, 2),
            op_at(1, AtomicOp::Store, Ordering::Release, 0, F, 10),
            op_at(2, AtomicOp::Load, Ordering::Acquire, 0, F, 20),
        ];
        let r = check(&trace);
        assert!(r.is_clean());
        assert!(r.exercised.is_empty());
    }
}
