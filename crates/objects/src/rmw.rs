//! Read-modify-write registers — §3.2 of the paper.
//!
//! `RMW(r, f)` atomically replaces the register's value `v` by `f(v)` and
//! returns the old value. The paper shows:
//!
//! * any *non-trivial* `f` (not the identity) solves two-process consensus
//!   (Theorem 4);
//! * an *interfering* family of functions — every pair either commutes or
//!   one overwrites the other — cannot solve three-process consensus
//!   (Theorem 6), which covers `test-and-set`, `swap` and `fetch-and-add`;
//! * `compare-and-swap` escapes the interference condition and solves
//!   n-process consensus for every n (Theorem 7).
//!
//! Functions are represented as *data* ([`RmwFn`]) so that protocols stay
//! hashable and so the interference analysis in `waitfree-core` can
//! enumerate and classify function families mechanically.

use waitfree_model::{ObjectSpec, Pid, Val};

/// A read-modify-write function `f : Val -> Val`, as data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RmwFn {
    /// `f(v) = v` — a plain read.
    Identity,
    /// `f(v) = 1` — test-and-set (returns old value, sets the register).
    TestAndSet,
    /// `f(v) = x` — swap in a new value.
    Swap(Val),
    /// `f(v) = v + d` — fetch-and-add.
    FetchAndAdd(Val),
    /// `f(v) = if v == old { new } else { v }` — compare-and-swap.
    CompareAndSwap(Val, Val),
    /// `f(v) = v | m` — fetch-and-or (bitwise), another classic primitive.
    FetchAndOr(Val),
    /// `f(v) = max(v, x)` — fetch-and-max; commutes with itself.
    FetchAndMax(Val),
    /// `f(v) = 2v + b` for `b ∈ {0,1}` — a *non-interfering* artificial
    /// function pair used in tests: neither commutes nor overwrites.
    ShiftIn(Val),
}

impl RmwFn {
    /// Evaluate the function.
    #[must_use]
    pub fn eval(self, v: Val) -> Val {
        match self {
            RmwFn::Identity => v,
            RmwFn::TestAndSet => 1,
            RmwFn::Swap(x) => x,
            RmwFn::FetchAndAdd(d) => v.wrapping_add(d),
            RmwFn::CompareAndSwap(old, new) => {
                if v == old {
                    new
                } else {
                    v
                }
            }
            RmwFn::FetchAndOr(m) => v | m,
            RmwFn::FetchAndMax(x) => v.max(x),
            RmwFn::ShiftIn(b) => v.wrapping_mul(2).wrapping_add(b),
        }
    }

    /// Whether the function is *trivial* (the identity) over the sampled
    /// domain. Theorem 4 applies exactly to the non-trivial functions.
    #[must_use]
    pub fn is_trivial_on(self, domain: &[Val]) -> bool {
        domain.iter().all(|&v| self.eval(v) == v)
    }
}

/// Operation on a read-modify-write register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RmwOp(pub RmwFn);

/// A register supporting arbitrary read-modify-write operations.
///
/// Every operation returns the *old* value, the defining property of RMW
/// (§3.2). A plain read is `RmwOp(RmwFn::Identity)`.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};
///
/// let mut r = RmwRegister::new(0);
/// assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::TestAndSet)), 0); // won
/// assert_eq!(r.apply(Pid(1), &RmwOp(RmwFn::TestAndSet)), 1); // lost
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RmwRegister {
    value: Val,
}

impl RmwRegister {
    /// A register holding `initial`.
    #[must_use]
    pub fn new(initial: Val) -> Self {
        RmwRegister { value: initial }
    }

    /// Current contents (test/debug convenience).
    #[must_use]
    pub fn value(&self) -> Val {
        self.value
    }
}

impl ObjectSpec for RmwRegister {
    type Op = RmwOp;
    type Resp = Val;

    fn apply(&mut self, _pid: Pid, op: &RmwOp) -> Val {
        let old = self.value;
        self.value = op.0.eval(old);
        old
    }
}

/// Operation on a bank of RMW registers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RmwBankOp {
    /// Which register to operate on.
    pub idx: usize,
    /// The function to apply.
    pub f: RmwFn,
}

/// A fixed-size array of RMW registers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RmwBank {
    cells: Vec<Val>,
}

impl RmwBank {
    /// A bank of `len` registers, all holding `initial`.
    #[must_use]
    pub fn new(len: usize, initial: Val) -> Self {
        RmwBank {
            cells: vec![initial; len],
        }
    }

    /// Contents of register `idx` (test/debug convenience).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn value(&self, idx: usize) -> Val {
        self.cells[idx]
    }
}

impl ObjectSpec for RmwBank {
    type Op = RmwBankOp;
    type Resp = Val;

    /// # Panics
    ///
    /// Panics if the register index is out of bounds.
    fn apply(&mut self, _pid: Pid, op: &RmwBankOp) -> Val {
        let old = self.cells[op.idx];
        self.cells[op.idx] = op.f.eval(old);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_a_read() {
        let mut r = RmwRegister::new(17);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::Identity)), 17);
        assert_eq!(r.value(), 17);
    }

    #[test]
    fn test_and_set_first_caller_sees_initial() {
        let mut r = RmwRegister::new(0);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::TestAndSet)), 0);
        assert_eq!(r.apply(Pid(1), &RmwOp(RmwFn::TestAndSet)), 1);
        assert_eq!(r.value(), 1);
    }

    #[test]
    fn swap_exchanges() {
        let mut r = RmwRegister::new(5);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::Swap(9))), 5);
        assert_eq!(r.value(), 9);
    }

    #[test]
    fn fetch_and_add_accumulates() {
        let mut r = RmwRegister::new(10);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::FetchAndAdd(3))), 10);
        assert_eq!(r.apply(Pid(1), &RmwOp(RmwFn::FetchAndAdd(4))), 13);
        assert_eq!(r.value(), 17);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let mut r = RmwRegister::new(1);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::CompareAndSwap(1, 7))), 1);
        assert_eq!(r.value(), 7);
        assert_eq!(r.apply(Pid(1), &RmwOp(RmwFn::CompareAndSwap(1, 9))), 7);
        assert_eq!(r.value(), 7, "failed CAS leaves value unchanged");
    }

    #[test]
    fn triviality_detection() {
        let domain: Vec<Val> = (-4..=4).collect();
        assert!(RmwFn::Identity.is_trivial_on(&domain));
        assert!(RmwFn::FetchAndAdd(0).is_trivial_on(&domain));
        assert!(!RmwFn::TestAndSet.is_trivial_on(&domain));
        assert!(!RmwFn::Swap(0).is_trivial_on(&domain));
        assert!(!RmwFn::FetchAndAdd(1).is_trivial_on(&domain));
        // CAS(x, x) is also trivial.
        assert!(RmwFn::CompareAndSwap(2, 2).is_trivial_on(&domain));
        assert!(!RmwFn::CompareAndSwap(2, 3).is_trivial_on(&domain));
    }

    #[test]
    fn fetch_and_or_and_max() {
        let mut r = RmwRegister::new(0b0101);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::FetchAndOr(0b0010))), 0b0101);
        assert_eq!(r.value(), 0b0111);
        assert_eq!(r.apply(Pid(0), &RmwOp(RmwFn::FetchAndMax(3))), 0b0111);
        assert_eq!(r.value(), 0b0111, "max with smaller value is a no-op");
    }

    #[test]
    fn bank_applies_per_cell() {
        let mut b = RmwBank::new(2, 0);
        b.apply(Pid(0), &RmwBankOp { idx: 0, f: RmwFn::FetchAndAdd(5) });
        b.apply(Pid(1), &RmwBankOp { idx: 1, f: RmwFn::TestAndSet });
        assert_eq!(b.value(0), 5);
        assert_eq!(b.value(1), 1);
    }
}
