//! FIFO queues — §3.3 — and the augmented (peek) queue — §3.4.
//!
//! A FIFO queue solves two-process consensus (Theorem 9) but not
//! three-process consensus (Theorem 11), placing it at level 2 of the
//! hierarchy. Adding a single non-destructive `peek` operation lifts it to
//! level ∞ (Theorem 12): every process enqueues its identifier and peeks,
//! and the first enqueue wins.

use std::collections::VecDeque;

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a (plain) FIFO queue.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// Place an item at the end of the queue.
    Enq(Val),
    /// Remove the item at the head of the queue.
    Deq,
}

/// Operation on an augmented FIFO queue.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AugQueueOp {
    /// Place an item at the end of the queue.
    Enq(Val),
    /// Remove the item at the head of the queue.
    Deq,
    /// Return, without removing, the item at the head of the queue.
    Peek,
}

/// Response of a queue operation. Operations are total: dequeuing or
/// peeking an empty queue returns [`QueueResp::Empty`], exactly as the
/// paper requires of total operations (§2.2).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum QueueResp {
    /// An enqueue completed.
    Ack,
    /// The dequeued or peeked item.
    Item(Val),
    /// The queue was empty.
    Empty,
}

/// A FIFO queue — hierarchy level 2.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
///
/// // The initialization of Theorem 9's protocol:
/// let mut q = FifoQueue::from_items([0, 1]); // "first", "second"
/// assert_eq!(q.apply(Pid(0), &QueueOp::Deq), QueueResp::Item(0));
/// assert_eq!(q.apply(Pid(1), &QueueOp::Deq), QueueResp::Item(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct FifoQueue {
    items: VecDeque<Val>,
}

impl FifoQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        FifoQueue::default()
    }

    /// A queue pre-loaded with `items`, front first.
    #[must_use]
    pub fn from_items<I: IntoIterator<Item = Val>>(items: I) -> Self {
        FifoQueue {
            items: items.into_iter().collect(),
        }
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl ObjectSpec for FifoQueue {
    type Op = QueueOp;
    type Resp = QueueResp;

    fn apply(&mut self, _pid: Pid, op: &QueueOp) -> QueueResp {
        match op {
            QueueOp::Enq(v) => {
                self.items.push_back(*v);
                QueueResp::Ack
            }
            QueueOp::Deq => match self.items.pop_front() {
                Some(v) => QueueResp::Item(v),
                None => QueueResp::Empty,
            },
        }
    }
}

/// A FIFO queue augmented with `peek` — hierarchy level ∞ (Theorem 12).
///
/// Corollaries 13 and 14: this object has no wait-free implementation from
/// any combination of read, write, test-and-set, swap or fetch-and-add, nor
/// from plain FIFO queues.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::queue::{AugQueueOp, AugmentedQueue, QueueResp};
///
/// // Theorem 12's protocol: enqueue your id, decide on peek().
/// let mut q = AugmentedQueue::new();
/// q.apply(Pid(1), &AugQueueOp::Enq(1));
/// q.apply(Pid(0), &AugQueueOp::Enq(0));
/// assert_eq!(q.apply(Pid(0), &AugQueueOp::Peek), QueueResp::Item(1));
/// assert_eq!(q.apply(Pid(1), &AugQueueOp::Peek), QueueResp::Item(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct AugmentedQueue {
    items: VecDeque<Val>,
}

impl AugmentedQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        AugmentedQueue::default()
    }

    /// A queue pre-loaded with `items`, front first.
    #[must_use]
    pub fn from_items<I: IntoIterator<Item = Val>>(items: I) -> Self {
        AugmentedQueue {
            items: items.into_iter().collect(),
        }
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl ObjectSpec for AugmentedQueue {
    type Op = AugQueueOp;
    type Resp = QueueResp;

    fn apply(&mut self, _pid: Pid, op: &AugQueueOp) -> QueueResp {
        match op {
            AugQueueOp::Enq(v) => {
                self.items.push_back(*v);
                QueueResp::Ack
            }
            AugQueueOp::Deq => match self.items.pop_front() {
                Some(v) => QueueResp::Item(v),
                None => QueueResp::Empty,
            },
            AugQueueOp::Peek => match self.items.front() {
                Some(v) => QueueResp::Item(*v),
                None => QueueResp::Empty,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = FifoQueue::new();
        for v in [1, 2, 3] {
            assert_eq!(q.apply(Pid(0), &QueueOp::Enq(v)), QueueResp::Ack);
        }
        assert_eq!(q.apply(Pid(1), &QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(q.apply(Pid(1), &QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(q.apply(Pid(1), &QueueOp::Deq), QueueResp::Item(3));
    }

    #[test]
    fn deq_on_empty_is_total() {
        let mut q = FifoQueue::new();
        assert_eq!(q.apply(Pid(0), &QueueOp::Deq), QueueResp::Empty);
        assert!(q.is_empty());
    }

    #[test]
    fn from_items_preserves_front_first() {
        let mut q = FifoQueue::from_items([10, 20]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.apply(Pid(0), &QueueOp::Deq), QueueResp::Item(10));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = AugmentedQueue::from_items([5]);
        assert_eq!(q.apply(Pid(0), &AugQueueOp::Peek), QueueResp::Item(5));
        assert_eq!(q.apply(Pid(0), &AugQueueOp::Peek), QueueResp::Item(5));
        assert_eq!(q.len(), 1);
        assert_eq!(q.apply(Pid(0), &AugQueueOp::Deq), QueueResp::Item(5));
        assert_eq!(q.apply(Pid(0), &AugQueueOp::Peek), QueueResp::Empty);
    }

    #[test]
    fn augmented_deq_matches_plain_queue() {
        let mut a = AugmentedQueue::new();
        let mut p = FifoQueue::new();
        for v in [3, 1, 4, 1, 5] {
            a.apply(Pid(0), &AugQueueOp::Enq(v));
            p.apply(Pid(0), &QueueOp::Enq(v));
        }
        for _ in 0..6 {
            let ra = a.apply(Pid(1), &AugQueueOp::Deq);
            let rp = p.apply(Pid(1), &QueueOp::Deq);
            assert_eq!(ra, rp);
        }
    }
}
