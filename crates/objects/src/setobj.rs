//! Set — §3.3 lists "sets" among the types registers cannot implement
//! (Corollary 10). `insert`/`remove` return whether they changed the set,
//! which is what makes concurrent order observable (two inserts of the same
//! element return different results depending on order), giving the set its
//! level-2 consensus power.

use std::collections::BTreeSet;

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SetOp {
    /// Add an element; responds with whether it was newly added.
    Insert(Val),
    /// Remove an element; responds with whether it was present.
    Remove(Val),
    /// Membership test.
    Member(Val),
    /// Number of elements.
    Size,
}

/// Response of a set operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SetResp {
    /// Boolean outcome of insert/remove/member.
    Bool(bool),
    /// Cardinality answer to `Size`.
    Count(usize),
}

/// A mathematical set of values with total operations.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::setobj::{SetObj, SetOp, SetResp};
///
/// let mut s = SetObj::new();
/// assert_eq!(s.apply(Pid(0), &SetOp::Insert(1)), SetResp::Bool(true));
/// assert_eq!(s.apply(Pid(1), &SetOp::Insert(1)), SetResp::Bool(false));
/// assert_eq!(s.apply(Pid(1), &SetOp::Member(1)), SetResp::Bool(true));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct SetObj {
    items: BTreeSet<Val>,
}

impl SetObj {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        SetObj::default()
    }

    /// A set pre-loaded with `items`.
    #[must_use]
    pub fn from_items<I: IntoIterator<Item = Val>>(items: I) -> Self {
        SetObj {
            items: items.into_iter().collect(),
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl ObjectSpec for SetObj {
    type Op = SetOp;
    type Resp = SetResp;

    fn apply(&mut self, _pid: Pid, op: &SetOp) -> SetResp {
        match op {
            SetOp::Insert(v) => SetResp::Bool(self.items.insert(*v)),
            SetOp::Remove(v) => SetResp::Bool(self.items.remove(v)),
            SetOp::Member(v) => SetResp::Bool(self.items.contains(v)),
            SetOp::Size => SetResp::Count(self.items.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reports_novelty() {
        let mut s = SetObj::new();
        assert_eq!(s.apply(Pid(0), &SetOp::Insert(7)), SetResp::Bool(true));
        assert_eq!(s.apply(Pid(0), &SetOp::Insert(7)), SetResp::Bool(false));
    }

    #[test]
    fn remove_reports_presence() {
        let mut s = SetObj::from_items([1, 2]);
        assert_eq!(s.apply(Pid(0), &SetOp::Remove(1)), SetResp::Bool(true));
        assert_eq!(s.apply(Pid(0), &SetOp::Remove(1)), SetResp::Bool(false));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn member_and_size_are_queries() {
        let mut s = SetObj::from_items([4]);
        let before = s.clone();
        assert_eq!(s.apply(Pid(0), &SetOp::Member(4)), SetResp::Bool(true));
        assert_eq!(s.apply(Pid(0), &SetOp::Member(5)), SetResp::Bool(false));
        assert_eq!(s.apply(Pid(0), &SetOp::Size), SetResp::Count(1));
        assert_eq!(s, before);
    }

    #[test]
    fn state_is_order_insensitive() {
        let mut a = SetObj::new();
        let mut b = SetObj::new();
        a.apply(Pid(0), &SetOp::Insert(1));
        a.apply(Pid(0), &SetOp::Insert(2));
        b.apply(Pid(0), &SetOp::Insert(2));
        b.apply(Pid(0), &SetOp::Insert(1));
        assert_eq!(a, b);
    }
}
