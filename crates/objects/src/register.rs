//! Atomic read/write registers — level 1 of the hierarchy (Figure 1-1).
//!
//! The paper's central negative result (Theorem 2) is that these objects
//! cannot solve two-process consensus; consequently (Corollary 3) they
//! cannot implement any object that can. Note that `write` returns *no
//! information* — a write that returned the previous value would be the
//! read-modify-write `swap`, a strictly stronger object (§3.2).

use waitfree_model::{ObjectSpec, Pid, Val};

/// Response of a register operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegResp {
    /// A write completed (no information is returned).
    Written,
    /// A read returned this value.
    Read(Val),
}

/// Operation on a single register.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegOp {
    /// Read the register.
    Read,
    /// Overwrite the register with a value.
    Write(Val),
}

/// A single atomic read/write register.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::register::{RegOp, RegResp, RwRegister};
///
/// let mut r = RwRegister::new(0);
/// assert_eq!(r.apply(Pid(0), &RegOp::Write(9)), RegResp::Written);
/// assert_eq!(r.apply(Pid(1), &RegOp::Read), RegResp::Read(9));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RwRegister {
    value: Val,
}

impl RwRegister {
    /// A register holding `initial`.
    #[must_use]
    pub fn new(initial: Val) -> Self {
        RwRegister { value: initial }
    }

    /// Current contents (test/debug convenience; processes must `Read`).
    #[must_use]
    pub fn value(&self) -> Val {
        self.value
    }
}

impl ObjectSpec for RwRegister {
    type Op = RegOp;
    type Resp = RegResp;

    fn apply(&mut self, _pid: Pid, op: &RegOp) -> RegResp {
        match *op {
            RegOp::Read => RegResp::Read(self.value),
            RegOp::Write(v) => {
                self.value = v;
                RegResp::Written
            }
        }
    }
}

/// Operation on a bank of registers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BankOp {
    /// Read register `0`-indexed `idx`.
    Read(usize),
    /// Overwrite register `idx` with a value.
    Write(usize, Val),
}

/// A fixed-size array of atomic read/write registers, each operation
/// touching exactly one register.
///
/// Protocols in the paper invariably use several registers
/// (`announce[i]`, `r[i,j]`, …); a bank keeps them in one [`ObjectSpec`]
/// so the explorer sees a single shared object.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::register::{BankOp, RegResp, RegisterBank};
///
/// let mut bank = RegisterBank::new(3, -1);
/// bank.apply(Pid(0), &BankOp::Write(2, 42));
/// assert_eq!(bank.apply(Pid(1), &BankOp::Read(2)), RegResp::Read(42));
/// assert_eq!(bank.apply(Pid(1), &BankOp::Read(0)), RegResp::Read(-1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RegisterBank {
    cells: Vec<Val>,
}

impl RegisterBank {
    /// A bank of `len` registers, all holding `initial`.
    #[must_use]
    pub fn new(len: usize, initial: Val) -> Self {
        RegisterBank {
            cells: vec![initial; len],
        }
    }

    /// A bank with explicit initial contents.
    #[must_use]
    pub fn from_values(cells: Vec<Val>) -> Self {
        RegisterBank { cells }
    }

    /// Number of registers in the bank.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the bank has no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Contents of register `idx` (test/debug convenience).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn value(&self, idx: usize) -> Val {
        self.cells[idx]
    }
}

impl ObjectSpec for RegisterBank {
    type Op = BankOp;
    type Resp = RegResp;

    /// # Panics
    ///
    /// Panics if the register index is out of bounds — protocols address a
    /// statically sized bank, so an out-of-range index is a protocol bug.
    fn apply(&mut self, _pid: Pid, op: &BankOp) -> RegResp {
        match *op {
            BankOp::Read(i) => RegResp::Read(self.cells[i]),
            BankOp::Write(i, v) => {
                self.cells[i] = v;
                RegResp::Written
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_returns_no_information() {
        let mut r = RwRegister::new(3);
        // Writes by different processes with different prior contents all
        // return the same response — this is what keeps registers weak.
        assert_eq!(r.apply(Pid(0), &RegOp::Write(5)), RegResp::Written);
        assert_eq!(r.apply(Pid(1), &RegOp::Write(6)), RegResp::Written);
    }

    #[test]
    fn read_is_side_effect_free() {
        let mut r = RwRegister::new(4);
        let before = r.clone();
        r.apply(Pid(0), &RegOp::Read);
        assert_eq!(r, before);
    }

    #[test]
    fn last_write_wins() {
        let mut r = RwRegister::new(0);
        r.apply(Pid(0), &RegOp::Write(1));
        r.apply(Pid(1), &RegOp::Write(2));
        assert_eq!(r.apply(Pid(0), &RegOp::Read), RegResp::Read(2));
    }

    #[test]
    fn bank_cells_are_independent() {
        let mut b = RegisterBank::new(4, 0);
        b.apply(Pid(0), &BankOp::Write(1, 11));
        b.apply(Pid(0), &BankOp::Write(3, 33));
        assert_eq!(b.apply(Pid(1), &BankOp::Read(0)), RegResp::Read(0));
        assert_eq!(b.apply(Pid(1), &BankOp::Read(1)), RegResp::Read(11));
        assert_eq!(b.apply(Pid(1), &BankOp::Read(3)), RegResp::Read(33));
    }

    #[test]
    fn bank_from_values() {
        let b = RegisterBank::from_values(vec![7, 8]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.value(0), 7);
        assert_eq!(b.value(1), 8);
    }

    #[test]
    #[should_panic]
    fn bank_out_of_bounds_panics() {
        let mut b = RegisterBank::new(1, 0);
        b.apply(Pid(0), &BankOp::Read(5));
    }
}
