//! Message channels — the message-passing comparison in §3.1.
//!
//! The paper maps Dolev–Dwork–Stockmeyer's parameter space into the shared
//! object model: send and receive become operations on a shared channel
//! object. Its conclusions, reproduced by this module's three channel
//! flavors:
//!
//! * point-to-point transmission with FIFO delivery cannot solve
//!   two-process consensus;
//! * broadcast with *unordered* delivery cannot either;
//! * broadcast with *ordered* delivery solves n-process consensus.
//!
//! Theorem 11 extends this: since queues (which subsume FIFO channels)
//! cannot solve three-process consensus, "message-passing architectures
//! such as hypercubes are not universal".

use waitfree_model::{BranchingSpec, ObjectSpec, Pid, Val};

/// Response of a channel operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ChanResp {
    /// A send completed.
    Ack,
    /// A received message and its sender.
    Msg {
        /// The sending process.
        from: Pid,
        /// The message body.
        body: Val,
    },
    /// No message was available (receive is total, it never blocks).
    Empty,
}

/// Operation on a point-to-point FIFO channel network.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum P2pOp {
    /// Send `body` to process `to`.
    Send {
        /// Destination process.
        to: Pid,
        /// Message body.
        body: Val,
    },
    /// Receive the oldest message sent to the caller by `from`.
    Recv {
        /// The sender whose channel to poll.
        from: Pid,
    },
}

/// A complete network of point-to-point FIFO channels for `n` processes.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::channel::{ChanResp, FifoNetwork, P2pOp};
///
/// let mut net = FifoNetwork::new(2);
/// net.apply(Pid(0), &P2pOp::Send { to: Pid(1), body: 9 });
/// assert_eq!(
///     net.apply(Pid(1), &P2pOp::Recv { from: Pid(0) }),
///     ChanResp::Msg { from: Pid(0), body: 9 }
/// );
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FifoNetwork {
    n: usize,
    /// `queues[sender * n + receiver]`, oldest message first.
    queues: Vec<Vec<Val>>,
}

impl FifoNetwork {
    /// An empty network among `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FifoNetwork {
            n,
            queues: vec![Vec::new(); n * n],
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.n
    }

    fn slot(&self, from: Pid, to: Pid) -> usize {
        assert!(from.0 < self.n && to.0 < self.n, "pid out of range");
        from.0 * self.n + to.0
    }
}

impl ObjectSpec for FifoNetwork {
    type Op = P2pOp;
    type Resp = ChanResp;

    /// # Panics
    ///
    /// Panics if a pid is out of range for the network.
    fn apply(&mut self, pid: Pid, op: &P2pOp) -> ChanResp {
        match *op {
            P2pOp::Send { to, body } => {
                let s = self.slot(pid, to);
                self.queues[s].push(body);
                ChanResp::Ack
            }
            P2pOp::Recv { from } => {
                let s = self.slot(from, pid);
                if self.queues[s].is_empty() {
                    ChanResp::Empty
                } else {
                    ChanResp::Msg {
                        from,
                        body: self.queues[s].remove(0),
                    }
                }
            }
        }
    }
}

/// Operation on a broadcast channel.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BcastOp {
    /// Broadcast `body` to every process (including the sender).
    Bcast(Val),
    /// Receive the next undelivered broadcast.
    Recv,
}

/// Broadcast with totally ordered delivery — solves n-process consensus
/// ("Broadcast with ordered delivery, however, does solve n-process
/// consensus", §3.1). Every receiver sees the same global sequence.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::channel::{BcastOp, ChanResp, OrderedBroadcast};
///
/// let mut ch = OrderedBroadcast::new(2);
/// ch.apply(Pid(0), &BcastOp::Bcast(5));
/// ch.apply(Pid(1), &BcastOp::Bcast(6));
/// // Both receivers see 5 before 6.
/// assert_eq!(ch.apply(Pid(0), &BcastOp::Recv), ChanResp::Msg { from: Pid(0), body: 5 });
/// assert_eq!(ch.apply(Pid(1), &BcastOp::Recv), ChanResp::Msg { from: Pid(0), body: 5 });
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OrderedBroadcast {
    log: Vec<(Pid, Val)>,
    cursor: Vec<usize>,
}

impl OrderedBroadcast {
    /// An empty ordered-broadcast channel among `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        OrderedBroadcast {
            log: Vec::new(),
            cursor: vec![0; n],
        }
    }
}

impl ObjectSpec for OrderedBroadcast {
    type Op = BcastOp;
    type Resp = ChanResp;

    /// # Panics
    ///
    /// Panics if the pid is out of range for the channel.
    fn apply(&mut self, pid: Pid, op: &BcastOp) -> ChanResp {
        match *op {
            BcastOp::Bcast(body) => {
                self.log.push((pid, body));
                ChanResp::Ack
            }
            BcastOp::Recv => {
                let c = self.cursor[pid.0];
                if c < self.log.len() {
                    self.cursor[pid.0] += 1;
                    let (from, body) = self.log[c];
                    ChanResp::Msg { from, body }
                } else {
                    ChanResp::Empty
                }
            }
        }
    }
}

/// Broadcast with *unordered* delivery — each receive may deliver any
/// pending message, chosen by the adversary. This is inherently
/// nondeterministic, so the object implements [`BranchingSpec`] directly
/// and the explorer branches over every possible delivery.
///
/// The paper (§3.1, citing Dolev–Dwork–Stockmeyer) notes this channel
/// cannot solve two-process consensus.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct UnorderedBroadcast {
    /// Per-receiver pending multiset, kept sorted so equal abstract states
    /// are equal Rust values.
    pending: Vec<Vec<(Pid, Val)>>,
}

impl UnorderedBroadcast {
    /// An empty unordered-broadcast channel among `n` processes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        UnorderedBroadcast {
            pending: vec![Vec::new(); n],
        }
    }

    /// Number of messages pending for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if the pid is out of range for the channel.
    #[must_use]
    pub fn pending_for(&self, pid: Pid) -> usize {
        self.pending[pid.0].len()
    }
}

impl BranchingSpec for UnorderedBroadcast {
    type Op = BcastOp;
    type Resp = ChanResp;

    /// # Panics
    ///
    /// Panics if the pid is out of range for the channel.
    fn apply_all(&self, pid: Pid, op: &BcastOp) -> Vec<(Self, ChanResp)> {
        match *op {
            BcastOp::Bcast(body) => {
                let mut next = self.clone();
                for (rcpt, inbox) in next.pending.iter_mut().enumerate() {
                    let entry = (pid, body);
                    let pos = inbox.partition_point(|e| *e <= entry);
                    inbox.insert(pos, entry);
                    let _ = rcpt;
                }
                vec![(next, ChanResp::Ack)]
            }
            BcastOp::Recv => {
                let inbox = &self.pending[pid.0];
                if inbox.is_empty() {
                    return vec![(self.clone(), ChanResp::Empty)];
                }
                let mut out = Vec::new();
                for i in 0..inbox.len() {
                    // Skip duplicates: delivering equal messages leads to
                    // identical successor states.
                    if i > 0 && inbox[i] == inbox[i - 1] {
                        continue;
                    }
                    let mut next = self.clone();
                    let (from, body) = next.pending[pid.0].remove(i);
                    out.push((next, ChanResp::Msg { from, body }));
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_channels_are_fifo_per_pair() {
        let mut net = FifoNetwork::new(3);
        net.apply(Pid(0), &P2pOp::Send { to: Pid(2), body: 1 });
        net.apply(Pid(0), &P2pOp::Send { to: Pid(2), body: 2 });
        net.apply(Pid(1), &P2pOp::Send { to: Pid(2), body: 9 });
        assert_eq!(
            net.apply(Pid(2), &P2pOp::Recv { from: Pid(0) }),
            ChanResp::Msg { from: Pid(0), body: 1 }
        );
        assert_eq!(
            net.apply(Pid(2), &P2pOp::Recv { from: Pid(0) }),
            ChanResp::Msg { from: Pid(0), body: 2 }
        );
        assert_eq!(
            net.apply(Pid(2), &P2pOp::Recv { from: Pid(1) }),
            ChanResp::Msg { from: Pid(1), body: 9 }
        );
    }

    #[test]
    fn p2p_recv_is_total() {
        let mut net = FifoNetwork::new(2);
        assert_eq!(net.apply(Pid(0), &P2pOp::Recv { from: Pid(1) }), ChanResp::Empty);
    }

    #[test]
    fn ordered_broadcast_delivers_same_sequence_to_all() {
        let mut ch = OrderedBroadcast::new(3);
        ch.apply(Pid(2), &BcastOp::Bcast(7));
        ch.apply(Pid(0), &BcastOp::Bcast(8));
        for p in Pid::all(3) {
            assert_eq!(
                ch.apply(p, &BcastOp::Recv),
                ChanResp::Msg { from: Pid(2), body: 7 }
            );
            assert_eq!(
                ch.apply(p, &BcastOp::Recv),
                ChanResp::Msg { from: Pid(0), body: 8 }
            );
            assert_eq!(ch.apply(p, &BcastOp::Recv), ChanResp::Empty);
        }
    }

    #[test]
    fn sender_receives_own_broadcast() {
        let mut ch = OrderedBroadcast::new(1);
        ch.apply(Pid(0), &BcastOp::Bcast(3));
        assert_eq!(
            ch.apply(Pid(0), &BcastOp::Recv),
            ChanResp::Msg { from: Pid(0), body: 3 }
        );
    }

    #[test]
    fn unordered_recv_branches_over_all_pending() {
        let ch = UnorderedBroadcast::new(2);
        let (ch, _) = ch.apply_all(Pid(0), &BcastOp::Bcast(1)).pop().unwrap();
        let (ch, _) = ch.apply_all(Pid(1), &BcastOp::Bcast(2)).pop().unwrap();
        let outcomes = ch.apply_all(Pid(0), &BcastOp::Recv);
        assert_eq!(outcomes.len(), 2, "either message may be delivered first");
        let bodies: Vec<Val> = outcomes
            .iter()
            .map(|(_, r)| match r {
                ChanResp::Msg { body, .. } => *body,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert!(bodies.contains(&1) && bodies.contains(&2));
    }

    #[test]
    fn unordered_recv_empty_is_total() {
        let ch = UnorderedBroadcast::new(1);
        let outcomes = ch.apply_all(Pid(0), &BcastOp::Recv);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].1, ChanResp::Empty);
    }

    #[test]
    fn unordered_duplicate_messages_collapse_branches() {
        let ch = UnorderedBroadcast::new(1);
        let (ch, _) = ch.apply_all(Pid(0), &BcastOp::Bcast(5)).pop().unwrap();
        let (ch, _) = ch.apply_all(Pid(0), &BcastOp::Bcast(5)).pop().unwrap();
        let outcomes = ch.apply_all(Pid(0), &BcastOp::Recv);
        assert_eq!(outcomes.len(), 1, "identical deliveries are one branch");
        assert_eq!(ch.pending_for(Pid(0)), 2);
    }
}
