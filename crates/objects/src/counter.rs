//! A shared counter — the running example for the universal construction
//! (§4: "behaviors as disparate as those of queues, databases, counters").
//!
//! With a `fetch-and-increment`-style response the counter sits at level 2
//! (it is a fetch-and-add specialization); with only blind `inc` and `read`
//! it is still not implementable from registers.

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a counter.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CounterOp {
    /// Add `delta` (may be negative) and respond with the *old* value.
    FetchAndAdd(Val),
    /// Add `delta` blindly (responds with nothing).
    Add(Val),
    /// Read the current value.
    Get,
}

/// Response of a counter operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CounterResp {
    /// A blind `Add` completed.
    Ack,
    /// The value returned by `FetchAndAdd` (old value) or `Get` (current).
    Value(Val),
}

/// A shared integer counter.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
///
/// let mut c = Counter::new(0);
/// assert_eq!(c.apply(Pid(0), &CounterOp::FetchAndAdd(5)), CounterResp::Value(0));
/// assert_eq!(c.apply(Pid(1), &CounterOp::Get), CounterResp::Value(5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Counter {
    value: Val,
}

impl Counter {
    /// A counter holding `initial`.
    #[must_use]
    pub fn new(initial: Val) -> Self {
        Counter { value: initial }
    }

    /// Current value (test/debug convenience).
    #[must_use]
    pub fn value(&self) -> Val {
        self.value
    }
}

impl ObjectSpec for Counter {
    type Op = CounterOp;
    type Resp = CounterResp;

    fn apply(&mut self, _pid: Pid, op: &CounterOp) -> CounterResp {
        match *op {
            CounterOp::FetchAndAdd(d) => {
                let old = self.value;
                self.value = self.value.wrapping_add(d);
                CounterResp::Value(old)
            }
            CounterOp::Add(d) => {
                self.value = self.value.wrapping_add(d);
                CounterResp::Ack
            }
            CounterOp::Get => CounterResp::Value(self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_and_add_returns_old() {
        let mut c = Counter::new(10);
        assert_eq!(c.apply(Pid(0), &CounterOp::FetchAndAdd(-3)), CounterResp::Value(10));
        assert_eq!(c.value(), 7);
    }

    #[test]
    fn blind_add_acks() {
        let mut c = Counter::new(0);
        assert_eq!(c.apply(Pid(0), &CounterOp::Add(2)), CounterResp::Ack);
        assert_eq!(c.apply(Pid(0), &CounterOp::Add(2)), CounterResp::Ack);
        assert_eq!(c.apply(Pid(0), &CounterOp::Get), CounterResp::Value(4));
    }

    #[test]
    fn get_is_side_effect_free() {
        let mut c = Counter::new(1);
        let before = c.clone();
        c.apply(Pid(0), &CounterOp::Get);
        assert_eq!(c, before);
    }
}
