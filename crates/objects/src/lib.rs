//! # waitfree-objects
//!
//! Executable sequential specifications for every shared object discussed
//! in Herlihy's *"Impossibility and Universality Results for Wait-Free
//! Synchronization"* (PODC 1988):
//!
//! | paper section | objects | module |
//! |---------------|---------|--------|
//! | §3.1 | atomic read/write registers | [`register`] |
//! | §3.2 | read-modify-write: test-and-set, swap, fetch-and-add, compare-and-swap | [`rmw`] |
//! | §3.3 | FIFO queue, stack, priority queue, set, list | [`queue`], [`stack`], [`pqueue`], [`setobj`] |
//! | §3.4 | augmented queue (`peek`) | [`queue`] |
//! | §3.5 | memory-to-memory `move` and `swap` | [`memory`] |
//! | §3.6 | atomic n-register assignment | [`assignment`] |
//! | §3.1 (message passing) | FIFO point-to-point, ordered/unordered broadcast | [`channel`] |
//! | §4 | fetch-and-cons, consensus objects | [`list`], [`consensus_obj`] |
//!
//! All objects implement [`waitfree_model::ObjectSpec`] (deterministic) or
//! [`waitfree_model::BranchingSpec`] (finitely nondeterministic, e.g. the
//! unordered-broadcast channel), so the explorer can schedule them and the
//! linearizability checker can replay them.
//!
//! # Example
//!
//! ```
//! use waitfree_model::{ObjectSpec, Pid};
//! use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
//!
//! let mut q = FifoQueue::new();
//! q.apply(Pid(0), &QueueOp::Enq(7));
//! assert_eq!(q.apply(Pid(1), &QueueOp::Deq), QueueResp::Item(7));
//! assert_eq!(q.apply(Pid(1), &QueueOp::Deq), QueueResp::Empty);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod channel;
pub mod consensus_obj;
pub mod counter;
pub mod list;
pub mod memory;
pub mod pair;
pub mod pqueue;
pub mod queue;
pub mod register;
pub mod rmw;
pub mod setobj;
pub mod stack;
