//! LIFO stack — one of the "trivial variations" of §3.3 (Corollary 10):
//! it solves two-process consensus but, like the queue, not three.

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a stack.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StackOp {
    /// Push an item.
    Push(Val),
    /// Pop the most recently pushed item.
    Pop,
}

/// Response of a stack operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StackResp {
    /// A push completed.
    Ack,
    /// The popped item.
    Item(Val),
    /// The stack was empty.
    Empty,
}

/// A LIFO stack with total operations — hierarchy level 2.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::stack::{Stack, StackOp, StackResp};
///
/// let mut s = Stack::new();
/// s.apply(Pid(0), &StackOp::Push(1));
/// s.apply(Pid(0), &StackOp::Push(2));
/// assert_eq!(s.apply(Pid(1), &StackOp::Pop), StackResp::Item(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Stack {
    items: Vec<Val>,
}

impl Stack {
    /// An empty stack.
    #[must_use]
    pub fn new() -> Self {
        Stack::default()
    }

    /// A stack pre-loaded with `items`; the *last* item is on top.
    #[must_use]
    pub fn from_items<I: IntoIterator<Item = Val>>(items: I) -> Self {
        Stack {
            items: items.into_iter().collect(),
        }
    }

    /// Number of items on the stack.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl ObjectSpec for Stack {
    type Op = StackOp;
    type Resp = StackResp;

    fn apply(&mut self, _pid: Pid, op: &StackOp) -> StackResp {
        match op {
            StackOp::Push(v) => {
                self.items.push(*v);
                StackResp::Ack
            }
            StackOp::Pop => match self.items.pop() {
                Some(v) => StackResp::Item(v),
                None => StackResp::Empty,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = Stack::new();
        for v in [1, 2, 3] {
            assert_eq!(s.apply(Pid(0), &StackOp::Push(v)), StackResp::Ack);
        }
        assert_eq!(s.apply(Pid(1), &StackOp::Pop), StackResp::Item(3));
        assert_eq!(s.apply(Pid(1), &StackOp::Pop), StackResp::Item(2));
        assert_eq!(s.apply(Pid(1), &StackOp::Pop), StackResp::Item(1));
        assert_eq!(s.apply(Pid(1), &StackOp::Pop), StackResp::Empty);
    }

    #[test]
    fn pop_on_empty_is_total() {
        let mut s = Stack::new();
        assert_eq!(s.apply(Pid(0), &StackOp::Pop), StackResp::Empty);
    }

    #[test]
    fn from_items_puts_last_on_top() {
        let mut s = Stack::from_items([1, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.apply(Pid(0), &StackOp::Pop), StackResp::Item(2));
        assert!(!s.is_empty());
    }
}
