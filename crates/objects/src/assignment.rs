//! Atomic n-register assignment — §3.6.
//!
//! The expression `r₁, …, rₙ := v₁, …, vₙ` assigns every `vᵢ` to `rᵢ`
//! *atomically*. Herlihy shows m-register assignment solves consensus for
//! exactly `2m-2` processes (Theorems 20 and 22) — the one family in the
//! paper occupying the intermediate levels of the hierarchy, and the
//! source of the striking corollary that consensus is *irreducible*: for
//! even n, n-process consensus cannot be built from (n-1)-process
//! consensus objects.

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on an assignment bank.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// Atomically assign each `(cell, value)` pair. Returns nothing.
    ///
    /// Pairs must name distinct cells; duplicates would make the result
    /// order-dependent and are rejected (see `apply`).
    Assign(Vec<(usize, Val)>),
    /// Read one cell.
    Read(usize),
}

/// Response of an assignment-bank operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AssignResp {
    /// An assignment completed (no information is returned).
    Ack,
    /// A read returned this value.
    Value(Val),
}

/// A bank of registers supporting atomic multi-register assignment.
///
/// The *width* (maximum number of cells one `Assign` may touch) is a
/// property of the object instance: `m`-register assignment is the object
/// whose width is `m`. Width is enforced so that experiments about
/// "m-assignment" cannot accidentally use wider operations.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::assignment::{AssignBank, AssignOp, AssignResp};
///
/// let mut b = AssignBank::new(3, 2, -1); // 3 cells, width-2 assignment
/// b.apply(Pid(0), &AssignOp::Assign(vec![(0, 5), (2, 7)]));
/// assert_eq!(b.apply(Pid(1), &AssignOp::Read(2)), AssignResp::Value(7));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AssignBank {
    cells: Vec<Val>,
    width: usize,
}

impl AssignBank {
    /// A bank of `len` cells with assignment width `width`, all cells
    /// holding `initial`.
    #[must_use]
    pub fn new(len: usize, width: usize, initial: Val) -> Self {
        AssignBank {
            cells: vec![initial; len],
            width,
        }
    }

    /// The assignment width `m`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the bank has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Contents of cell `idx` (test/debug convenience).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn value(&self, idx: usize) -> Val {
        self.cells[idx]
    }
}

impl ObjectSpec for AssignBank {
    type Op = AssignOp;
    type Resp = AssignResp;

    /// # Panics
    ///
    /// Panics if a cell index is out of bounds, if an `Assign` exceeds the
    /// bank's width, or if it names the same cell twice.
    fn apply(&mut self, _pid: Pid, op: &AssignOp) -> AssignResp {
        match op {
            AssignOp::Assign(pairs) => {
                assert!(
                    pairs.len() <= self.width,
                    "assignment of {} cells exceeds width {}",
                    pairs.len(),
                    self.width
                );
                for (i, &(cell, _)) in pairs.iter().enumerate() {
                    assert!(
                        pairs[..i].iter().all(|&(c, _)| c != cell),
                        "duplicate cell {cell} in atomic assignment"
                    );
                }
                for &(cell, v) in pairs {
                    self.cells[cell] = v;
                }
                AssignResp::Ack
            }
            AssignOp::Read(i) => AssignResp::Value(self.cells[*i]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_atomic_per_operation() {
        let mut b = AssignBank::new(4, 3, 0);
        b.apply(Pid(0), &AssignOp::Assign(vec![(0, 1), (1, 2), (3, 4)]));
        assert_eq!(b.value(0), 1);
        assert_eq!(b.value(1), 2);
        assert_eq!(b.value(2), 0);
        assert_eq!(b.value(3), 4);
    }

    #[test]
    fn single_assignment_is_a_write() {
        let mut b = AssignBank::new(2, 2, 0);
        assert_eq!(
            b.apply(Pid(0), &AssignOp::Assign(vec![(1, 9)])),
            AssignResp::Ack
        );
        assert_eq!(b.apply(Pid(0), &AssignOp::Read(1)), AssignResp::Value(9));
    }

    #[test]
    fn empty_assignment_is_a_no_op() {
        let mut b = AssignBank::new(2, 2, 3);
        let before = b.clone();
        b.apply(Pid(0), &AssignOp::Assign(vec![]));
        assert_eq!(b, before);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn width_is_enforced() {
        let mut b = AssignBank::new(4, 2, 0);
        b.apply(Pid(0), &AssignOp::Assign(vec![(0, 1), (1, 1), (2, 1)]));
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_cells_rejected() {
        let mut b = AssignBank::new(4, 2, 0);
        b.apply(Pid(0), &AssignOp::Assign(vec![(0, 1), (0, 2)]));
    }
}
