//! Priority queue — another §3.3 data type at hierarchy level 2
//! (Corollary 10 / "the same result holds for many similar data types").

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a priority queue.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PqOp {
    /// Insert an item.
    Insert(Val),
    /// Remove and return the minimum item.
    ExtractMin,
    /// Return, without removing, the minimum item.
    FindMin,
}

/// Response of a priority-queue operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PqResp {
    /// An insert completed.
    Ack,
    /// The extracted or found item.
    Item(Val),
    /// The queue was empty.
    Empty,
}

/// A min-priority queue with total operations.
///
/// The state is kept as a sorted vector so that equal abstract states are
/// equal Rust values — a requirement for the explorer's memoization
/// (`ObjectSpec: Eq + Hash`). Duplicate priorities are allowed.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::pqueue::{PqOp, PqResp, PriorityQueue};
///
/// let mut pq = PriorityQueue::new();
/// pq.apply(Pid(0), &PqOp::Insert(5));
/// pq.apply(Pid(0), &PqOp::Insert(2));
/// assert_eq!(pq.apply(Pid(1), &PqOp::ExtractMin), PqResp::Item(2));
/// assert_eq!(pq.apply(Pid(1), &PqOp::ExtractMin), PqResp::Item(5));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct PriorityQueue {
    sorted: Vec<Val>,
}

impl PriorityQueue {
    /// An empty priority queue.
    #[must_use]
    pub fn new() -> Self {
        PriorityQueue::default()
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

impl ObjectSpec for PriorityQueue {
    type Op = PqOp;
    type Resp = PqResp;

    fn apply(&mut self, _pid: Pid, op: &PqOp) -> PqResp {
        match op {
            PqOp::Insert(v) => {
                let pos = self.sorted.partition_point(|&x| x <= *v);
                self.sorted.insert(pos, *v);
                PqResp::Ack
            }
            PqOp::ExtractMin => {
                if self.sorted.is_empty() {
                    PqResp::Empty
                } else {
                    PqResp::Item(self.sorted.remove(0))
                }
            }
            PqOp::FindMin => match self.sorted.first() {
                Some(&v) => PqResp::Item(v),
                None => PqResp::Empty,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_min_is_sorted() {
        let mut pq = PriorityQueue::new();
        for v in [3, 1, 4, 1, 5] {
            assert_eq!(pq.apply(Pid(0), &PqOp::Insert(v)), PqResp::Ack);
        }
        let mut out = Vec::new();
        while let PqResp::Item(v) = pq.apply(Pid(1), &PqOp::ExtractMin) {
            out.push(v);
        }
        assert_eq!(out, vec![1, 1, 3, 4, 5]);
    }

    #[test]
    fn empty_operations_are_total() {
        let mut pq = PriorityQueue::new();
        assert_eq!(pq.apply(Pid(0), &PqOp::ExtractMin), PqResp::Empty);
        assert_eq!(pq.apply(Pid(0), &PqOp::FindMin), PqResp::Empty);
    }

    #[test]
    fn find_min_does_not_remove() {
        let mut pq = PriorityQueue::new();
        pq.apply(Pid(0), &PqOp::Insert(9));
        assert_eq!(pq.apply(Pid(0), &PqOp::FindMin), PqResp::Item(9));
        assert_eq!(pq.len(), 1);
    }

    #[test]
    fn duplicate_insert_stable_state() {
        let mut a = PriorityQueue::new();
        let mut b = PriorityQueue::new();
        // Same multiset inserted in different orders yields equal states.
        for v in [2, 1, 2] {
            a.apply(Pid(0), &PqOp::Insert(v));
        }
        for v in [2, 2, 1] {
            b.apply(Pid(0), &PqOp::Insert(v));
        }
        assert_eq!(a, b);
    }
}
