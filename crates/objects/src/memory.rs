//! Memory-to-memory operations — §3.5.
//!
//! A bank of registers augmented with `move` (atomically copy one cell to
//! another) or memory-to-memory `swap` (atomically exchange two cells).
//! Both solve n-process consensus for arbitrary n (Theorems 15 and 16) and
//! therefore sit at level ∞ of the hierarchy, even though neither returns
//! any value! Their power is in what they do to shared state, not in what
//! they report.
//!
//! The paper's footnote 3 distinguishes memory-to-memory swap (exchanges
//! two *shared* cells) from the read-modify-write swap of §3.2 (exchanges a
//! shared cell with a private value); both live in this workspace,
//! the latter in [`crate::rmw`].

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a memory bank.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Read cell `idx`.
    Read(usize),
    /// Overwrite cell `idx` with a value.
    Write(usize, Val),
    /// Atomically copy cell `src` into cell `dst`. Returns nothing.
    Move {
        /// Source cell.
        src: usize,
        /// Destination cell.
        dst: usize,
    },
    /// Atomically exchange cells `a` and `b`. Returns nothing.
    Swap {
        /// First cell.
        a: usize,
        /// Second cell.
        b: usize,
    },
}

/// Response of a memory-bank operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemResp {
    /// A write/move/swap completed (no information is returned).
    Ack,
    /// A read returned this value.
    Value(Val),
}

/// A bank of registers with memory-to-memory `move` and `swap`.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::memory::{MemOp, MemResp, MemoryBank};
///
/// let mut m = MemoryBank::from_values(vec![1, 2]);
/// m.apply(Pid(0), &MemOp::Swap { a: 0, b: 1 });
/// assert_eq!(m.apply(Pid(0), &MemOp::Read(0)), MemResp::Value(2));
/// assert_eq!(m.apply(Pid(0), &MemOp::Read(1)), MemResp::Value(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MemoryBank {
    cells: Vec<Val>,
}

impl MemoryBank {
    /// A bank of `len` cells, all holding `initial`.
    #[must_use]
    pub fn new(len: usize, initial: Val) -> Self {
        MemoryBank {
            cells: vec![initial; len],
        }
    }

    /// A bank with explicit initial contents.
    #[must_use]
    pub fn from_values(cells: Vec<Val>) -> Self {
        MemoryBank { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the bank has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Contents of cell `idx` (test/debug convenience).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn value(&self, idx: usize) -> Val {
        self.cells[idx]
    }
}

impl ObjectSpec for MemoryBank {
    type Op = MemOp;
    type Resp = MemResp;

    /// # Panics
    ///
    /// Panics if a cell index is out of bounds.
    fn apply(&mut self, _pid: Pid, op: &MemOp) -> MemResp {
        match *op {
            MemOp::Read(i) => MemResp::Value(self.cells[i]),
            MemOp::Write(i, v) => {
                self.cells[i] = v;
                MemResp::Ack
            }
            MemOp::Move { src, dst } => {
                self.cells[dst] = self.cells[src];
                MemResp::Ack
            }
            MemOp::Swap { a, b } => {
                self.cells.swap(a, b);
                MemResp::Ack
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_copies_not_moves() {
        let mut m = MemoryBank::from_values(vec![7, 0]);
        assert_eq!(m.apply(Pid(0), &MemOp::Move { src: 0, dst: 1 }), MemResp::Ack);
        assert_eq!(m.value(0), 7, "source is unchanged");
        assert_eq!(m.value(1), 7);
    }

    #[test]
    fn swap_exchanges_cells() {
        let mut m = MemoryBank::from_values(vec![1, 2, 3]);
        m.apply(Pid(0), &MemOp::Swap { a: 0, b: 2 });
        assert_eq!(m.value(0), 3);
        assert_eq!(m.value(2), 1);
        assert_eq!(m.value(1), 2);
    }

    #[test]
    fn swap_with_self_is_identity() {
        let mut m = MemoryBank::from_values(vec![4, 5]);
        let before = m.clone();
        m.apply(Pid(0), &MemOp::Swap { a: 1, b: 1 });
        assert_eq!(m, before);
    }

    #[test]
    fn move_and_swap_return_no_information() {
        // Level-∞ power without informative responses.
        let mut a = MemoryBank::from_values(vec![1, 2]);
        let mut b = MemoryBank::from_values(vec![9, 8]);
        assert_eq!(
            a.apply(Pid(0), &MemOp::Move { src: 0, dst: 1 }),
            b.apply(Pid(0), &MemOp::Move { src: 0, dst: 1 }),
        );
    }

    #[test]
    fn read_write_basics() {
        let mut m = MemoryBank::new(2, 0);
        assert_eq!(m.apply(Pid(0), &MemOp::Write(1, 5)), MemResp::Ack);
        assert_eq!(m.apply(Pid(0), &MemOp::Read(1)), MemResp::Value(5));
        assert_eq!(m.len(), 2);
    }
}
