//! Consensus objects — §4.2.
//!
//! A *consensus object* is the distilled level-∞ primitive: the first
//! `decide(v)` fixes the outcome, and every later `decide` returns the same
//! winner. The universal construction of Figure 4-5 consumes an unbounded
//! array of these ("we model multiple rounds of consensus as an unbounded
//! array `consensus`"), provided here as [`ConsensusArray`].

use std::collections::BTreeMap;

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a single consensus object.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DecideOp(pub Val);

/// A one-shot consensus object: the first proposal wins and every call
/// returns the winner.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::consensus_obj::{ConsensusObj, DecideOp};
///
/// let mut c = ConsensusObj::new();
/// assert_eq!(c.apply(Pid(1), &DecideOp(11)), 11);
/// assert_eq!(c.apply(Pid(0), &DecideOp(22)), 11); // too late
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct ConsensusObj {
    winner: Option<Val>,
}

impl ConsensusObj {
    /// An undecided consensus object.
    #[must_use]
    pub fn new() -> Self {
        ConsensusObj::default()
    }

    /// The winner, if decided.
    #[must_use]
    pub fn winner(&self) -> Option<Val> {
        self.winner
    }
}

impl ObjectSpec for ConsensusObj {
    type Op = DecideOp;
    type Resp = Val;

    fn apply(&mut self, _pid: Pid, op: &DecideOp) -> Val {
        *self.winner.get_or_insert(op.0)
    }
}

/// Operation on a consensus array: decide in round `round`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RoundDecideOp {
    /// Which round's consensus object to join.
    pub round: usize,
    /// The caller's input value.
    pub input: Val,
}

/// An unbounded array of consensus objects, indexed by round number —
/// the `consensus[k].decide(i)` of Figure 4-5.
///
/// Rounds are materialized lazily, so the object is "unbounded" while the
/// state stays finite (only decided rounds are stored).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct ConsensusArray {
    winners: BTreeMap<usize, Val>,
}

impl ConsensusArray {
    /// An array with every round undecided.
    #[must_use]
    pub fn new() -> Self {
        ConsensusArray::default()
    }

    /// The winner of `round`, if decided.
    #[must_use]
    pub fn winner(&self, round: usize) -> Option<Val> {
        self.winners.get(&round).copied()
    }

    /// Number of decided rounds.
    #[must_use]
    pub fn decided_rounds(&self) -> usize {
        self.winners.len()
    }
}

impl ObjectSpec for ConsensusArray {
    type Op = RoundDecideOp;
    type Resp = Val;

    fn apply(&mut self, _pid: Pid, op: &RoundDecideOp) -> Val {
        *self.winners.entry(op.round).or_insert(op.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_decide_wins() {
        let mut c = ConsensusObj::new();
        assert_eq!(c.winner(), None);
        assert_eq!(c.apply(Pid(0), &DecideOp(5)), 5);
        assert_eq!(c.apply(Pid(1), &DecideOp(6)), 5);
        assert_eq!(c.apply(Pid(2), &DecideOp(7)), 5);
        assert_eq!(c.winner(), Some(5));
    }

    #[test]
    fn rounds_are_independent() {
        let mut a = ConsensusArray::new();
        assert_eq!(a.apply(Pid(0), &RoundDecideOp { round: 3, input: 30 }), 30);
        assert_eq!(a.apply(Pid(1), &RoundDecideOp { round: 1, input: 10 }), 10);
        assert_eq!(a.apply(Pid(1), &RoundDecideOp { round: 3, input: 99 }), 30);
        assert_eq!(a.winner(1), Some(10));
        assert_eq!(a.winner(2), None);
        assert_eq!(a.decided_rounds(), 2);
    }

    #[test]
    fn repeat_decide_by_same_process_is_stable() {
        let mut c = ConsensusObj::new();
        c.apply(Pid(0), &DecideOp(1));
        assert_eq!(c.apply(Pid(0), &DecideOp(2)), 1);
    }
}
