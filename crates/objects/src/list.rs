//! Lists and `fetch-and-cons` — the engine of the universal construction
//! (§4.1).
//!
//! `fetch-and-cons(x)` atomically (1) places `x` at the head of the list
//! and (2) returns the list of items that follow it — i.e. the prior
//! contents. It is the read-modify-write of the list world, sits at level ∞
//! of the hierarchy (Figure 1-1), and any object that solves n-process
//! consensus can implement it (Figure 4-5), which is exactly why "consensus
//! ⇒ universal".
//!
//! The list is generic over its item type: the universal construction logs
//! *operations* of the implemented object, so `ConsList<S::Op>` is the
//! representation object of §4.1 ("we represent the object's state as a
//! list of the invocations that have been applied to it").

use std::fmt::Debug;
use std::hash::Hash;

use waitfree_model::{ObjectSpec, Pid, Val};

/// Operation on a [`ConsList`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ListOp<T = Val> {
    /// Atomically prepend an item and return the suffix that follows it.
    FetchAndCons(T),
    /// Read the whole list (head first). Non-destructive.
    Read,
    /// Read the head item. Non-destructive.
    Car,
}

/// Response of a list operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ListResp<T = Val> {
    /// The list of items following the freshly consed item (for
    /// `FetchAndCons`) or the whole list (for `Read`), head first.
    Items(Vec<T>),
    /// The head item (for `Car`).
    Item(T),
    /// The list was empty (for `Car`).
    Empty,
}

/// A shared list supporting atomic `fetch-and-cons` — hierarchy level ∞.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::list::{ConsList, ListOp, ListResp};
///
/// let mut l: ConsList = ConsList::new();
/// assert_eq!(l.apply(Pid(0), &ListOp::FetchAndCons(1)), ListResp::Items(vec![]));
/// assert_eq!(l.apply(Pid(1), &ListOp::FetchAndCons(2)), ListResp::Items(vec![1]));
/// assert_eq!(l.apply(Pid(0), &ListOp::Read), ListResp::Items(vec![2, 1]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ConsList<T = Val> {
    /// Head-first item sequence.
    items: Vec<T>,
}

impl<T> Default for ConsList<T> {
    fn default() -> Self {
        ConsList { items: Vec::new() }
    }
}

impl<T: Clone + Eq + Hash + Debug> ConsList<T> {
    /// An empty list (the paper's `Λ`).
    #[must_use]
    pub fn new() -> Self {
        ConsList::default()
    }

    /// A list with the given head-first contents.
    #[must_use]
    pub fn from_items<I: IntoIterator<Item = T>>(items: I) -> Self {
        ConsList {
            items: items.into_iter().collect(),
        }
    }

    /// Head-first contents (test/debug convenience).
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl<T: Clone + Eq + Hash + Debug> ObjectSpec for ConsList<T> {
    type Op = ListOp<T>;
    type Resp = ListResp<T>;

    fn apply(&mut self, _pid: Pid, op: &ListOp<T>) -> ListResp<T> {
        match op {
            ListOp::FetchAndCons(v) => {
                let suffix = self.items.clone();
                self.items.insert(0, v.clone());
                ListResp::Items(suffix)
            }
            ListOp::Read => ListResp::Items(self.items.clone()),
            ListOp::Car => match self.items.first() {
                Some(v) => ListResp::Item(v.clone()),
                None => ListResp::Empty,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_and_cons_returns_prior_contents() {
        let mut l: ConsList = ConsList::new();
        assert_eq!(l.apply(Pid(0), &ListOp::FetchAndCons(10)), ListResp::Items(vec![]));
        assert_eq!(
            l.apply(Pid(1), &ListOp::FetchAndCons(20)),
            ListResp::Items(vec![10])
        );
        assert_eq!(
            l.apply(Pid(2), &ListOp::FetchAndCons(30)),
            ListResp::Items(vec![20, 10])
        );
        assert_eq!(l.items(), &[30, 20, 10]);
    }

    #[test]
    fn suffix_property_each_view_extends_predecessor() {
        // The linearizability criterion of §4.2: each operation's view
        // (argument prepended to result) is extended by its successor's
        // result. Check it on a sequential run.
        let mut l: ConsList = ConsList::new();
        let mut prev_view: Vec<Val> = Vec::new();
        for x in 0..5 {
            let resp = l.apply(Pid(0), &ListOp::FetchAndCons(x));
            let ListResp::Items(suffix) = resp else { panic!() };
            assert_eq!(suffix, prev_view, "result must equal predecessor's view");
            let mut view = vec![x];
            view.extend(&suffix);
            prev_view = view;
        }
    }

    #[test]
    fn car_and_read_are_queries() {
        let mut l: ConsList = ConsList::from_items([1, 2]);
        let before = l.clone();
        assert_eq!(l.apply(Pid(0), &ListOp::Car), ListResp::Item(1));
        assert_eq!(l.apply(Pid(0), &ListOp::Read), ListResp::Items(vec![1, 2]));
        assert_eq!(l, before);
    }

    #[test]
    fn car_of_empty_is_total() {
        let mut l: ConsList = ConsList::new();
        assert_eq!(l.apply(Pid(0), &ListOp::Car), ListResp::Empty);
    }

    #[test]
    fn generic_item_type() {
        // The universal construction logs (pid, op-name) pairs.
        let mut l: ConsList<(u8, &'static str)> = ConsList::new();
        l.apply(Pid(0), &ListOp::FetchAndCons((0, "enq")));
        let resp = l.apply(Pid(1), &ListOp::FetchAndCons((1, "deq")));
        assert_eq!(resp, ListResp::Items(vec![(0, "enq")]));
    }
}
