//! Composition of two shared objects into one.
//!
//! Protocols frequently use several objects of different types at once —
//! Figure 4-5's fetch-and-cons uses read/write registers *and* an array of
//! consensus objects. [`Pair`] packages two [`ObjectSpec`]s as a single
//! spec whose operations are tagged with the side they address, so the
//! explorer still sees one shared object.

use waitfree_model::{ObjectSpec, Pid};

/// An operation (or response) routed to one side of a [`Pair`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Either<L, R> {
    /// The first component.
    Left(L),
    /// The second component.
    Right(R),
}

/// Two shared objects packaged as one.
///
/// # Example
///
/// ```
/// use waitfree_model::{ObjectSpec, Pid};
/// use waitfree_objects::pair::{Either, Pair};
/// use waitfree_objects::register::{RegOp, RegResp, RwRegister};
/// use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
///
/// let mut obj = Pair::new(RwRegister::new(0), FifoQueue::new());
/// obj.apply(Pid(0), &Either::Left(RegOp::Write(1)));
/// obj.apply(Pid(0), &Either::Right(QueueOp::Enq(2)));
/// assert_eq!(
///     obj.apply(Pid(1), &Either::Right(QueueOp::Deq)),
///     Either::Right(QueueResp::Item(2))
/// );
/// assert_eq!(
///     obj.apply(Pid(1), &Either::Left(RegOp::Read)),
///     Either::Left(RegResp::Read(1))
/// );
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Pair<L, R> {
    /// First component object.
    pub left: L,
    /// Second component object.
    pub right: R,
}

impl<L, R> Pair<L, R> {
    /// Package `left` and `right` as one object.
    #[must_use]
    pub fn new(left: L, right: R) -> Self {
        Pair { left, right }
    }
}

impl<L: ObjectSpec, R: ObjectSpec> ObjectSpec for Pair<L, R> {
    type Op = Either<L::Op, R::Op>;
    type Resp = Either<L::Resp, R::Resp>;

    fn apply(&mut self, pid: Pid, op: &Self::Op) -> Self::Resp {
        match op {
            Either::Left(o) => Either::Left(self.left.apply(pid, o)),
            Either::Right(o) => Either::Right(self.right.apply(pid, o)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::{RegOp, RegResp, RwRegister};

    #[test]
    fn components_do_not_interfere() {
        let mut p = Pair::new(RwRegister::new(0), RwRegister::new(100));
        p.apply(Pid(0), &Either::Left(RegOp::Write(1)));
        assert_eq!(
            p.apply(Pid(0), &Either::Right(RegOp::Read)),
            Either::Right(RegResp::Read(100))
        );
    }

    #[test]
    fn nesting_pairs_composes() {
        let inner = Pair::new(RwRegister::new(1), RwRegister::new(2));
        let mut outer = Pair::new(inner, RwRegister::new(3));
        let resp = outer.apply(Pid(0), &Either::Left(Either::Right(RegOp::Read)));
        assert_eq!(resp, Either::Left(Either::Right(RegResp::Read(2))));
    }
}
