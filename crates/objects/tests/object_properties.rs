//! Property tests: each simulated object's sequential semantics agrees
//! with an independent reference model on arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::VecDeque;
use waitfree_model::{ObjectSpec, Pid, Val};
use waitfree_objects::assignment::{AssignBank, AssignOp, AssignResp};
use waitfree_objects::memory::{MemOp, MemoryBank, MemResp};
use waitfree_objects::pqueue::{PqOp, PqResp, PriorityQueue};
use waitfree_objects::queue::{AugQueueOp, AugmentedQueue, QueueOp, QueueResp};
use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};
use waitfree_objects::stack::{Stack, StackOp, StackResp};

proptest! {
    /// Queue (and augmented queue) vs `VecDeque`.
    #[test]
    fn queue_matches_vecdeque(ops in proptest::collection::vec(
        prop_oneof![(0i64..64).prop_map(Some), Just(None)], 0..60)
    ) {
        let mut q = waitfree_objects::queue::FifoQueue::new();
        let mut aq = AugmentedQueue::new();
        let mut model: VecDeque<Val> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    prop_assert_eq!(q.apply(Pid(0), &QueueOp::Enq(v)), QueueResp::Ack);
                    prop_assert_eq!(aq.apply(Pid(0), &AugQueueOp::Enq(v)), QueueResp::Ack);
                    model.push_back(v);
                }
                None => {
                    // Peek first (augmented only), then dequeue from all.
                    let expect_peek = model.front().map_or(QueueResp::Empty, |&v| QueueResp::Item(v));
                    prop_assert_eq!(aq.apply(Pid(0), &AugQueueOp::Peek), expect_peek);
                    let expect = model.pop_front().map_or(QueueResp::Empty, QueueResp::Item);
                    prop_assert_eq!(q.apply(Pid(0), &QueueOp::Deq), expect.clone());
                    prop_assert_eq!(aq.apply(Pid(0), &AugQueueOp::Deq), expect);
                }
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }

    /// Stack vs `Vec`.
    #[test]
    fn stack_matches_vec(ops in proptest::collection::vec(
        prop_oneof![(0i64..64).prop_map(Some), Just(None)], 0..60)
    ) {
        let mut s = Stack::new();
        let mut model: Vec<Val> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    s.apply(Pid(0), &StackOp::Push(v));
                    model.push(v);
                }
                None => {
                    let expect = model.pop().map_or(StackResp::Empty, StackResp::Item);
                    prop_assert_eq!(s.apply(Pid(0), &StackOp::Pop), expect);
                }
            }
        }
    }

    /// Priority queue vs a sorted reference.
    #[test]
    fn pqueue_matches_sorted_model(ops in proptest::collection::vec(
        prop_oneof![(0i64..32).prop_map(Some), Just(None)], 0..60)
    ) {
        let mut pq = PriorityQueue::new();
        let mut model: Vec<Val> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    pq.apply(Pid(0), &PqOp::Insert(v));
                    model.push(v);
                    model.sort_unstable();
                }
                None => {
                    let expect = if model.is_empty() {
                        PqResp::Empty
                    } else {
                        PqResp::Item(model.remove(0))
                    };
                    prop_assert_eq!(pq.apply(Pid(0), &PqOp::ExtractMin), expect);
                }
            }
        }
    }

    /// RMW register vs direct function application.
    #[test]
    fn rmw_matches_direct_application(
        init in -8i64..8,
        fns in proptest::collection::vec(0usize..6, 0..40)
    ) {
        let catalogue = [
            RmwFn::Identity,
            RmwFn::TestAndSet,
            RmwFn::Swap(3),
            RmwFn::FetchAndAdd(2),
            RmwFn::CompareAndSwap(1, 9),
            RmwFn::FetchAndMax(4),
        ];
        let mut reg = RmwRegister::new(init);
        let mut model = init;
        for i in fns {
            let f = catalogue[i];
            let old = reg.apply(Pid(0), &RmwOp(f));
            prop_assert_eq!(old, model, "{:?}", f);
            model = f.eval(model);
        }
        prop_assert_eq!(reg.value(), model);
    }

    /// Memory bank: move/swap/read/write vs a plain vector.
    #[test]
    fn memory_bank_matches_vec(
        ops in proptest::collection::vec((0usize..4, 0usize..4, -4i64..4, 0usize..4), 0..60)
    ) {
        let mut bank = MemoryBank::new(4, 0);
        let mut model = vec![0i64; 4];
        for (a, b, v, kind) in ops {
            match kind {
                0 => {
                    prop_assert_eq!(bank.apply(Pid(0), &MemOp::Read(a)), MemResp::Value(model[a]));
                }
                1 => {
                    bank.apply(Pid(0), &MemOp::Write(a, v));
                    model[a] = v;
                }
                2 => {
                    bank.apply(Pid(0), &MemOp::Move { src: a, dst: b });
                    model[b] = model[a];
                }
                _ => {
                    bank.apply(Pid(0), &MemOp::Swap { a, b });
                    model.swap(a, b);
                }
            }
        }
        for i in 0..4 {
            prop_assert_eq!(bank.value(i), model[i]);
        }
    }

    /// Atomic assignment: the whole batch lands or (on reads) nothing moves.
    #[test]
    fn assignment_is_batch_atomic(
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..5, -4i64..4), 0..3), 0..20)
    ) {
        let mut bank = AssignBank::new(5, 3, -1);
        let mut model = vec![-1i64; 5];
        for batch in batches {
            // Deduplicate cells within a batch (the object rejects dups).
            let mut seen = std::collections::HashSet::new();
            let batch: Vec<(usize, Val)> = batch
                .into_iter()
                .filter(|(c, _)| seen.insert(*c))
                .collect();
            bank.apply(Pid(0), &AssignOp::Assign(batch.clone()));
            for (c, v) in batch {
                model[c] = v;
            }
            for i in 0..5 {
                prop_assert_eq!(
                    bank.apply(Pid(0), &AssignOp::Read(i)),
                    AssignResp::Value(model[i])
                );
            }
        }
    }
}
