//! Property tests: each simulated object's sequential semantics agrees
//! with an independent reference model on arbitrary operation sequences.
//! Sequences are drawn from the workspace's seeded [`DetRng`] (offline
//! replacement for proptest strategies): 256 random sequences per
//! property, reproducible by seed.

use std::collections::VecDeque;
use waitfree_faults::rng::DetRng;
use waitfree_model::{ObjectSpec, Pid, Val};
use waitfree_objects::assignment::{AssignBank, AssignOp, AssignResp};
use waitfree_objects::memory::{MemOp, MemoryBank, MemResp};
use waitfree_objects::pqueue::{PqOp, PqResp, PriorityQueue};
use waitfree_objects::queue::{AugQueueOp, AugmentedQueue, QueueOp, QueueResp};
use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};
use waitfree_objects::stack::{Stack, StackOp, StackResp};

const SEQUENCES: usize = 256;

/// `len` draws of `Some(value in 0..vals)` (an insert) or `None` (a removal).
fn push_pop_ops(rng: &mut DetRng, max_len: usize, vals: i64) -> Vec<Option<Val>> {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| if rng.per_mille(500) { Some(rng.range_i64(0, vals)) } else { None })
        .collect()
}

/// Queue (and augmented queue) vs `VecDeque`.
#[test]
fn queue_matches_vecdeque() {
    let mut rng = DetRng::new(0x5155_4555);
    for _ in 0..SEQUENCES {
        let ops = push_pop_ops(&mut rng, 60, 64);
        let mut q = waitfree_objects::queue::FifoQueue::new();
        let mut aq = AugmentedQueue::new();
        let mut model: VecDeque<Val> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    assert_eq!(q.apply(Pid(0), &QueueOp::Enq(v)), QueueResp::Ack);
                    assert_eq!(aq.apply(Pid(0), &AugQueueOp::Enq(v)), QueueResp::Ack);
                    model.push_back(v);
                }
                None => {
                    // Peek first (augmented only), then dequeue from all.
                    let expect_peek =
                        model.front().map_or(QueueResp::Empty, |&v| QueueResp::Item(v));
                    assert_eq!(aq.apply(Pid(0), &AugQueueOp::Peek), expect_peek);
                    let expect = model.pop_front().map_or(QueueResp::Empty, QueueResp::Item);
                    assert_eq!(q.apply(Pid(0), &QueueOp::Deq), expect.clone());
                    assert_eq!(aq.apply(Pid(0), &AugQueueOp::Deq), expect);
                }
            }
        }
        assert_eq!(q.len(), model.len());
    }
}

/// Stack vs `Vec`.
#[test]
fn stack_matches_vec() {
    let mut rng = DetRng::new(0x5354_4143);
    for _ in 0..SEQUENCES {
        let ops = push_pop_ops(&mut rng, 60, 64);
        let mut s = Stack::new();
        let mut model: Vec<Val> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    s.apply(Pid(0), &StackOp::Push(v));
                    model.push(v);
                }
                None => {
                    let expect = model.pop().map_or(StackResp::Empty, StackResp::Item);
                    assert_eq!(s.apply(Pid(0), &StackOp::Pop), expect);
                }
            }
        }
    }
}

/// Priority queue vs a sorted reference.
#[test]
fn pqueue_matches_sorted_model() {
    let mut rng = DetRng::new(0x5051_5545);
    for _ in 0..SEQUENCES {
        let ops = push_pop_ops(&mut rng, 60, 32);
        let mut pq = PriorityQueue::new();
        let mut model: Vec<Val> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    pq.apply(Pid(0), &PqOp::Insert(v));
                    model.push(v);
                    model.sort_unstable();
                }
                None => {
                    let expect = if model.is_empty() {
                        PqResp::Empty
                    } else {
                        PqResp::Item(model.remove(0))
                    };
                    assert_eq!(pq.apply(Pid(0), &PqOp::ExtractMin), expect);
                }
            }
        }
    }
}

/// RMW register vs direct function application.
#[test]
fn rmw_matches_direct_application() {
    let catalogue = [
        RmwFn::Identity,
        RmwFn::TestAndSet,
        RmwFn::Swap(3),
        RmwFn::FetchAndAdd(2),
        RmwFn::CompareAndSwap(1, 9),
        RmwFn::FetchAndMax(4),
    ];
    let mut rng = DetRng::new(0x524D_5752);
    for _ in 0..SEQUENCES {
        let init = rng.range_i64(-8, 8);
        let count = rng.below(41);
        let mut reg = RmwRegister::new(init);
        let mut model = init;
        for _ in 0..count {
            let f = catalogue[rng.below(catalogue.len())];
            let old = reg.apply(Pid(0), &RmwOp(f));
            assert_eq!(old, model, "{f:?}");
            model = f.eval(model);
        }
        assert_eq!(reg.value(), model);
    }
}

/// Memory bank: move/swap/read/write vs a plain vector.
#[test]
fn memory_bank_matches_vec() {
    let mut rng = DetRng::new(0x4D45_4D42);
    for _ in 0..SEQUENCES {
        let count = rng.below(61);
        let mut bank = MemoryBank::new(4, 0);
        let mut model = [0i64; 4];
        for _ in 0..count {
            let (a, b) = (rng.below(4), rng.below(4));
            let v = rng.range_i64(-4, 4);
            match rng.below(4) {
                0 => {
                    assert_eq!(bank.apply(Pid(0), &MemOp::Read(a)), MemResp::Value(model[a]));
                }
                1 => {
                    bank.apply(Pid(0), &MemOp::Write(a, v));
                    model[a] = v;
                }
                2 => {
                    bank.apply(Pid(0), &MemOp::Move { src: a, dst: b });
                    model[b] = model[a];
                }
                _ => {
                    bank.apply(Pid(0), &MemOp::Swap { a, b });
                    model.swap(a, b);
                }
            }
        }
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(bank.value(i), m);
        }
    }
}

/// Atomic assignment: the whole batch lands or (on reads) nothing moves.
#[test]
fn assignment_is_batch_atomic() {
    let mut rng = DetRng::new(0x4153_4742);
    for _ in 0..SEQUENCES {
        let batches = rng.below(21);
        let mut bank = AssignBank::new(5, 3, -1);
        let mut model = [-1i64; 5];
        for _ in 0..batches {
            let raw: Vec<(usize, Val)> =
                (0..rng.below(3)).map(|_| (rng.below(5), rng.range_i64(-4, 4))).collect();
            // Deduplicate cells within a batch (the object rejects dups).
            let mut seen = std::collections::HashSet::new();
            let batch: Vec<(usize, Val)> =
                raw.into_iter().filter(|(c, _)| seen.insert(*c)).collect();
            bank.apply(Pid(0), &AssignOp::Assign(batch.clone()));
            for (c, v) in batch {
                model[c] = v;
            }
            for (i, &m) in model.iter().enumerate() {
                assert_eq!(bank.apply(Pid(0), &AssignOp::Read(i)), AssignResp::Value(m));
            }
        }
    }
}
