//! # waitfree
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! architecture overview.
//!
//! ```
//! use waitfree::core::hierarchy;
//! assert!(hierarchy::table().len() >= 4);
//! ```
pub use waitfree_core as core;
pub use waitfree_explorer as explorer;
pub use waitfree_faults as faults;
pub use waitfree_model as model;
pub use waitfree_objects as objects;
pub use waitfree_registers as registers;
pub use waitfree_sched as sched;
pub use waitfree_store as store;
pub use waitfree_sync as sync;
