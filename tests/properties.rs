//! Property-based integration tests (proptest): the universal
//! construction is equivalent to its sequential specification on
//! arbitrary workloads; the linearizability checker agrees with a
//! brute-force oracle on tiny histories.

use proptest::prelude::*;
use waitfree::core::universal::log::LogUniversal;
use waitfree::model::{linearize, History, ObjectSpec, PendingPolicy, Pid};
use waitfree::objects::queue::{FifoQueue, QueueOp};
use waitfree::objects::register::{RegOp, RegResp, RwRegister};
use waitfree::objects::stack::{Stack, StackOp};
use waitfree::sync::universal::WfUniversal;

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0i64..16).prop_map(QueueOp::Enq),
        Just(QueueOp::Deq),
    ]
}

fn stack_op() -> impl Strategy<Value = StackOp> {
    prop_oneof![
        (0i64..16).prop_map(StackOp::Push),
        Just(StackOp::Pop),
    ]
}

proptest! {
    /// §4.1's claim, as a property: replaying the log IS the object.
    #[test]
    fn log_universal_queue_equals_spec(ops in proptest::collection::vec(queue_op(), 0..40)) {
        let mut uni_plain = LogUniversal::new(FifoQueue::new(), false);
        let mut uni_ckpt = LogUniversal::new(FifoQueue::new(), true);
        let mut spec = FifoQueue::new();
        for (i, op) in ops.iter().enumerate() {
            let pid = Pid(i % 3);
            let expected = spec.apply(pid, op);
            prop_assert_eq!(uni_plain.invoke(pid, op.clone()), expected.clone());
            prop_assert_eq!(uni_ckpt.invoke(pid, op.clone()), expected);
        }
        prop_assert_eq!(uni_plain.state(), spec);
    }

    /// Same for stacks, through the hardware universal object.
    #[test]
    fn hardware_universal_stack_equals_spec(ops in proptest::collection::vec(stack_op(), 0..40)) {
        let mut hw = WfUniversal::new(Stack::new(), 1, ops.len().max(1)).remove(0);
        let mut spec = Stack::new();
        for op in &ops {
            let expected = spec.apply(Pid(0), op);
            prop_assert_eq!(hw.invoke(op.clone()), expected);
        }
    }

    /// The Wing-Gong checker agrees with a brute-force permutation oracle
    /// on small register histories.
    #[test]
    fn linearize_agrees_with_bruteforce(
        // Up to 5 complete operations across 2 processes with random
        // overlap structure and random (possibly wrong) read results.
        spec in proptest::collection::vec(
            ((0usize..2), (0usize..3), (0i64..3)), 1..5
        )
    ) {
        // Build a history: each tuple (pid, kind, v): kind 0 => write v,
        // kind 1 => read returning v, kind 2 => read returning 0.
        // All operations are sequential per process but interleaved
        // round-robin across processes to create overlap.
        let mut h: History<RegOp, RegResp> = History::new();
        let mut pending: Vec<Option<(Pid, RegResp)>> = vec![None, None];
        for &(p, kind, v) in &spec {
            let pid = Pid(p);
            // Close any pending op of this process first.
            if let Some((q, resp)) = pending[p].take() {
                h.respond(q, resp).unwrap();
            }
            match kind {
                0 => {
                    h.invoke(pid, RegOp::Write(v));
                    pending[p] = Some((pid, RegResp::Written));
                }
                _ => {
                    h.invoke(pid, RegOp::Read);
                    let result = if kind == 1 { v } else { 0 };
                    pending[p] = Some((pid, RegResp::Read(result)));
                }
            }
        }
        for slot in pending.iter_mut() {
            if let Some((q, resp)) = slot.take() {
                h.respond(q, resp).unwrap();
            }
        }

        let fast = linearize(&h, &RwRegister::new(0), PendingPolicy::MayTakeEffect)
            .outcome
            .is_ok();
        let slow = bruteforce_linearizable(&h);
        prop_assert_eq!(fast, slow, "history: {:?}", h);
    }
}

/// Brute-force oracle: try every permutation of the operations that
/// respects real-time order and replays legally.
fn bruteforce_linearizable(h: &History<RegOp, RegResp>) -> bool {
    let ops = h.ops();
    let n = ops.len();
    let mut order: Vec<usize> = (0..n).collect();
    permute(&mut order, 0, &mut |perm| {
        // Real-time order respected?
        for i in 0..n {
            for j in 0..n {
                let (pi, pj) = (
                    perm.iter().position(|&x| x == i).unwrap(),
                    perm.iter().position(|&x| x == j).unwrap(),
                );
                if ops[i].precedes(&ops[j]) && pi > pj {
                    return false;
                }
            }
        }
        // Legal replay?
        let mut reg = RwRegister::new(0);
        for &k in perm.iter() {
            let resp = reg.apply(ops[k].pid, &ops[k].op);
            if ops[k].resp.as_ref() != Some(&resp) {
                return false;
            }
        }
        true
    })
}

/// Call `f` on every permutation; return true if any satisfies it.
fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&Vec<usize>) -> bool) -> bool {
    if k == arr.len() {
        return f(arr);
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        if permute(arr, k + 1, f) {
            arr.swap(k, i);
            return true;
        }
        arr.swap(k, i);
    }
    false
}
