//! Property-based integration tests (seeded random workloads): the
//! universal construction is equivalent to its sequential specification
//! on arbitrary workloads; the linearizability checker agrees with a
//! brute-force oracle on tiny histories.

use waitfree::core::universal::log::LogUniversal;
use waitfree::faults::rng::DetRng;
use waitfree::model::{linearize, History, ObjectSpec, PendingPolicy, Pid};
use waitfree::objects::queue::{FifoQueue, QueueOp};
use waitfree::objects::register::{RegOp, RegResp, RwRegister};
use waitfree::objects::stack::{Stack, StackOp};
use waitfree::sync::universal::WfUniversal;

const SEQUENCES: usize = 256;

fn queue_ops(rng: &mut DetRng, max_len: usize) -> Vec<QueueOp> {
    (0..rng.below(max_len + 1))
        .map(|_| if rng.per_mille(500) { QueueOp::Enq(rng.range_i64(0, 16)) } else { QueueOp::Deq })
        .collect()
}

fn stack_ops(rng: &mut DetRng, max_len: usize) -> Vec<StackOp> {
    (0..rng.below(max_len + 1))
        .map(|_| {
            if rng.per_mille(500) {
                StackOp::Push(rng.range_i64(0, 16))
            } else {
                StackOp::Pop
            }
        })
        .collect()
}

/// §4.1's claim, as a property: replaying the log IS the object.
#[test]
fn log_universal_queue_equals_spec() {
    let mut rng = DetRng::new(0x4C4F_4755);
    for _ in 0..SEQUENCES {
        let ops = queue_ops(&mut rng, 39);
        let mut uni_plain = LogUniversal::new(FifoQueue::new(), false);
        let mut uni_ckpt = LogUniversal::new(FifoQueue::new(), true);
        let mut spec = FifoQueue::new();
        for (i, op) in ops.iter().enumerate() {
            let pid = Pid(i % 3);
            let expected = spec.apply(pid, op);
            assert_eq!(uni_plain.invoke(pid, op.clone()), expected.clone());
            assert_eq!(uni_ckpt.invoke(pid, op.clone()), expected);
        }
        assert_eq!(uni_plain.state(), spec);
    }
}

/// Same for stacks, through the hardware universal object.
#[test]
fn hardware_universal_stack_equals_spec() {
    let mut rng = DetRng::new(0x4857_5354);
    for _ in 0..SEQUENCES {
        let ops = stack_ops(&mut rng, 39);
        let mut hw = WfUniversal::new(Stack::new(), 1, ops.len().max(1)).remove(0);
        let mut spec = Stack::new();
        for op in &ops {
            let expected = spec.apply(Pid(0), op);
            assert_eq!(hw.invoke(op.clone()), expected);
        }
    }
}

/// The Wing-Gong checker agrees with a brute-force permutation oracle
/// on small register histories.
#[test]
fn linearize_agrees_with_bruteforce() {
    let mut rng = DetRng::new(0x4252_5554);
    for _ in 0..SEQUENCES {
        // Up to 5 complete operations across 2 processes with random
        // overlap structure and random (possibly wrong) read results.
        let spec: Vec<(usize, usize, i64)> = (0..1 + rng.below(4))
            .map(|_| (rng.below(2), rng.below(3), rng.range_i64(0, 3)))
            .collect();
        // Build a history: each tuple (pid, kind, v): kind 0 => write v,
        // kind 1 => read returning v, kind 2 => read returning 0.
        // All operations are sequential per process but interleaved
        // round-robin across processes to create overlap.
        let mut h: History<RegOp, RegResp> = History::new();
        let mut pending: Vec<Option<(Pid, RegResp)>> = vec![None, None];
        for &(p, kind, v) in &spec {
            let pid = Pid(p);
            // Close any pending op of this process first.
            if let Some((q, resp)) = pending[p].take() {
                h.respond(q, resp).unwrap();
            }
            match kind {
                0 => {
                    h.invoke(pid, RegOp::Write(v));
                    pending[p] = Some((pid, RegResp::Written));
                }
                _ => {
                    h.invoke(pid, RegOp::Read);
                    let result = if kind == 1 { v } else { 0 };
                    pending[p] = Some((pid, RegResp::Read(result)));
                }
            }
        }
        for slot in pending.iter_mut() {
            if let Some((q, resp)) = slot.take() {
                h.respond(q, resp).unwrap();
            }
        }

        let fast = linearize(&h, &RwRegister::new(0), PendingPolicy::MayTakeEffect)
            .outcome
            .is_ok();
        let slow = bruteforce_linearizable(&h);
        assert_eq!(fast, slow, "history: {h:?}");
    }
}

/// Brute-force oracle: try every permutation of the operations that
/// respects real-time order and replays legally.
fn bruteforce_linearizable(h: &History<RegOp, RegResp>) -> bool {
    let ops = h.ops();
    let n = ops.len();
    let mut order: Vec<usize> = (0..n).collect();
    permute(&mut order, 0, &mut |perm| {
        // Real-time order respected?
        for i in 0..n {
            for j in 0..n {
                let (pi, pj) = (
                    perm.iter().position(|&x| x == i).unwrap(),
                    perm.iter().position(|&x| x == j).unwrap(),
                );
                if ops[i].precedes(&ops[j]) && pi > pj {
                    return false;
                }
            }
        }
        // Legal replay?
        let mut reg = RwRegister::new(0);
        for &k in perm.iter() {
            let resp = reg.apply(ops[k].pid, &ops[k].op);
            if ops[k].resp.as_ref() != Some(&resp) {
                return false;
            }
        }
        true
    })
}

/// Call `f` on every permutation; return true if any satisfies it.
fn permute(arr: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&Vec<usize>) -> bool) -> bool {
    if k == arr.len() {
        return f(arr);
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        if permute(arr, k + 1, f) {
            arr.swap(k, i);
            return true;
        }
        arr.swap(k, i);
    }
    false
}
