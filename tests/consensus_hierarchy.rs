//! Integration: the consensus hierarchy end to end — protocols from
//! `waitfree-core`, objects from `waitfree-objects`, verification by
//! `waitfree-explorer`.

use waitfree::core::hierarchy::{table, validate_row, Level};
use waitfree::core::protocols::cas::CasConsensus;
use waitfree::core::protocols::queue::QueueConsensus;
use waitfree::explorer::check::{check_consensus, CheckSettings, Violation};
use waitfree::explorer::valency;

#[test]
fn every_hierarchy_row_validates_at_its_level() {
    for row in table() {
        let n = match row.level {
            Level::Exact(n) => n,
            Level::AssignmentFamily => 3, // Theorem 19 instance
            Level::Infinite => 3,
        };
        assert_eq!(validate_row(&row, n), Some(true), "{} at n={n}", row.object);
    }
}

#[test]
fn level_two_objects_make_no_claim_at_three() {
    for row in table() {
        if row.level == Level::Exact(2) {
            assert_eq!(
                validate_row(&row, 3),
                None,
                "{} must not claim 3-process consensus",
                row.object
            );
        }
    }
}

#[test]
fn running_a_two_process_protocol_with_three_processes_breaks() {
    // The "hierarchy is strict" sanity check: the queue protocol of
    // Theorem 9 misbehaves with a third participant.
    let (p, o) = QueueConsensus::setup();
    let report = check_consensus(&p, &o, 3, &CheckSettings::default());
    assert!(matches!(
        report.violation,
        Some(Violation::Agreement { .. } | Violation::Validity { .. })
    ));
}

#[test]
fn correct_protocols_are_initially_bivalent() {
    // The premise every impossibility proof starts from, checked on a
    // real protocol: "The initial protocol state is bivalent".
    let (p, o) = CasConsensus::setup();
    let report = valency::analyze(&p, &o, 2, 1_000_000);
    assert!(report.initially_bivalent());
    // And a decision eventually happens: some univalent configs exist.
    assert!(report.univalent > 0);
    // Schedule count for 2 one-shot processes: C(4,2) = 6.
    assert_eq!(report.schedules, 6);
}

#[test]
fn crashes_do_not_block_survivors_for_universal_objects() {
    for row in table() {
        if row.level == Level::Infinite {
            // The exhaustive checker already includes crash branches; a
            // passing report means survivors always decided.
            let report = (row.solves)(3).expect("universal objects solve any n");
            assert!(report.is_ok(), "{}", row.object);
        }
    }
}
