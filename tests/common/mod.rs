//! Shared test plumbing: one abstraction over the two universal-object
//! implementations, so every fault-injection and helping-bound scenario
//! runs against both the optimised pointer-CAS path
//! (`waitfree::sync::universal`) and the `ConsensusCell` baseline
//! (`waitfree::sync::universal_cell`).
#![allow(dead_code)] // each test binary uses a different subset

use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sync::universal::{UniversalError, WfHandle, WfUniversal};
use waitfree::sync::universal_cell::{CellHandle, CellUniversal};

/// A wait-free counter built on one of the two universal-object paths.
/// Both implementations place the same `universal::*` failpoint sites at
/// the same algorithmic steps, so a single adversary plan stresses
/// either.
pub trait CounterPath: Sized + Send + 'static {
    /// Short label for assertion messages.
    const NAME: &'static str;

    /// One handle per thread, unbounded (or seed-formula) log.
    fn create(n: usize, max_ops: usize) -> Vec<Self>;
    /// One handle per thread with an explicit log-position cap, so
    /// `UniversalError::LogFull` is observable.
    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self>;
    /// `invoke` on the underlying handle.
    fn invoke(&mut self, op: CounterOp) -> CounterResp;
    /// `try_invoke` on the underlying handle.
    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError>;
    /// The handle's thread index.
    fn tid(&self) -> usize;
    /// Worst-case threading-loop iterations over the handle's life.
    fn max_threading_steps(&self) -> usize;
}

/// The optimised pointer-CAS / segmented-log path.
pub struct PtrPath(pub WfHandle<Counter>);

impl CounterPath for PtrPath {
    const NAME: &'static str = "pointer";

    fn create(n: usize, max_ops: usize) -> Vec<Self> {
        WfUniversal::new(Counter::new(0), n, max_ops).into_iter().map(PtrPath).collect()
    }

    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self> {
        WfUniversal::with_capacity(Counter::new(0), n, max_ops, capacity)
            .into_iter()
            .map(PtrPath)
            .collect()
    }

    fn invoke(&mut self, op: CounterOp) -> CounterResp {
        self.0.invoke(op)
    }

    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError> {
        self.0.try_invoke(op)
    }

    fn tid(&self) -> usize {
        self.0.tid()
    }

    fn max_threading_steps(&self) -> usize {
        self.0.max_threading_steps()
    }
}

/// The seed `ConsensusCell` baseline path.
pub struct CellPath(pub CellHandle<Counter>);

impl CounterPath for CellPath {
    const NAME: &'static str = "cell";

    fn create(n: usize, max_ops: usize) -> Vec<Self> {
        CellUniversal::new(Counter::new(0), n, max_ops).into_iter().map(CellPath).collect()
    }

    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self> {
        CellUniversal::with_capacity(Counter::new(0), n, max_ops, capacity)
            .into_iter()
            .map(CellPath)
            .collect()
    }

    fn invoke(&mut self, op: CounterOp) -> CounterResp {
        self.0.invoke(op)
    }

    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError> {
        self.0.try_invoke(op)
    }

    fn tid(&self) -> usize {
        self.0.tid()
    }

    fn max_threading_steps(&self) -> usize {
        self.0.max_threading_steps()
    }
}
