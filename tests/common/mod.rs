//! Shared test plumbing: one abstraction over the universal-object
//! implementations, so every fault-injection and helping-bound scenario
//! runs against the optimised pointer-CAS path in both decide modes
//! (per-op and batch-combining, `waitfree::sync::universal`) and the
//! `ConsensusCell` baseline (`waitfree::sync::universal_cell`).
#![allow(dead_code)] // each test binary uses a different subset

use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sync::universal::{UniversalError, WfHandle, WfUniversal};
use waitfree::sync::universal_cell::{CellHandle, CellUniversal};

/// A wait-free counter built on one of the universal-object paths.
/// All implementations place the same `universal::*` failpoint sites at
/// the same algorithmic steps, so a single adversary plan stresses
/// any of them (`universal::collect` additionally fires on the
/// combining path).
pub trait CounterPath: Sized + Send + 'static {
    /// Short label for assertion messages.
    const NAME: &'static str;

    /// Whether one decided log position can carry up to `n` operations
    /// (batch combining) or exactly one. Scenarios that count positions
    /// against completed ops scale their bounds by this.
    const COMBINES: bool = false;

    /// One handle per thread, unbounded (or seed-formula) log.
    fn create(n: usize, max_ops: usize) -> Vec<Self>;
    /// One handle per thread with an explicit log-position cap, so
    /// `UniversalError::LogFull` is observable.
    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self>;
    /// `invoke` on the underlying handle.
    fn invoke(&mut self, op: CounterOp) -> CounterResp;
    /// `try_invoke` on the underlying handle.
    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError>;
    /// The handle's thread index.
    fn tid(&self) -> usize;
    /// Worst-case threading-loop iterations over the handle's life.
    fn max_threading_steps(&self) -> usize;
}

/// The optimised pointer-CAS / segmented-log path, one decide per op
/// (the PR-2 shape, kept as the combining layer's differential
/// baseline).
pub struct PtrPath(pub WfHandle<Counter>);

impl CounterPath for PtrPath {
    const NAME: &'static str = "pointer";

    fn create(n: usize, max_ops: usize) -> Vec<Self> {
        WfUniversal::new_per_op(Counter::new(0), n, max_ops).into_iter().map(PtrPath).collect()
    }

    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self> {
        WfUniversal::with_capacity_per_op(Counter::new(0), n, max_ops, capacity)
            .into_iter()
            .map(PtrPath)
            .collect()
    }

    fn invoke(&mut self, op: CounterOp) -> CounterResp {
        self.0.invoke(op)
    }

    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError> {
        self.0.try_invoke(op)
    }

    fn tid(&self) -> usize {
        self.0.tid()
    }

    fn max_threading_steps(&self) -> usize {
        self.0.max_threading_steps()
    }
}

/// The pointer path with batch combining (the `WfUniversal::new`
/// default): one winning decide threads every currently-pending
/// announced op.
pub struct BatchedPath(pub WfHandle<Counter>);

impl CounterPath for BatchedPath {
    const NAME: &'static str = "batched";
    const COMBINES: bool = true;

    fn create(n: usize, max_ops: usize) -> Vec<Self> {
        WfUniversal::new(Counter::new(0), n, max_ops).into_iter().map(BatchedPath).collect()
    }

    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self> {
        WfUniversal::with_capacity(Counter::new(0), n, max_ops, capacity)
            .into_iter()
            .map(BatchedPath)
            .collect()
    }

    fn invoke(&mut self, op: CounterOp) -> CounterResp {
        self.0.invoke(op)
    }

    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError> {
        self.0.try_invoke(op)
    }

    fn tid(&self) -> usize {
        self.0.tid()
    }

    fn max_threading_steps(&self) -> usize {
        self.0.max_threading_steps()
    }
}

/// The combining pointer path with checkpointed log truncation: a
/// checkpoint is decided every few positions and segments behind every
/// handle's replay frontier are reclaimed mid-run — no fault-tolerance
/// property may depend on the truncated history staying allocated.
pub struct CheckpointedPath(pub WfHandle<Counter>);

/// Aggressive cadence so even short storm scenarios cross several
/// checkpoints and (usually) at least one segment reclaim.
pub const CHECKPOINT_EVERY: usize = 8;

impl CounterPath for CheckpointedPath {
    const NAME: &'static str = "checkpointed";
    const COMBINES: bool = true;

    fn create(n: usize, max_ops: usize) -> Vec<Self> {
        WfUniversal::new_checkpointed(Counter::new(0), n, max_ops, CHECKPOINT_EVERY)
            .into_iter()
            .map(CheckpointedPath)
            .collect()
    }

    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self> {
        // A capped log never truncates (the cadence guard stops at the
        // LogFull edge), so the capped leg is the plain combining path —
        // kept so capped scenarios still run under this label.
        WfUniversal::with_capacity(Counter::new(0), n, max_ops, capacity)
            .into_iter()
            .map(CheckpointedPath)
            .collect()
    }

    fn invoke(&mut self, op: CounterOp) -> CounterResp {
        self.0.invoke(op)
    }

    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError> {
        self.0.try_invoke(op)
    }

    fn tid(&self) -> usize {
        self.0.tid()
    }

    fn max_threading_steps(&self) -> usize {
        self.0.max_threading_steps()
    }
}

/// The seed `ConsensusCell` baseline path.
pub struct CellPath(pub CellHandle<Counter>);

impl CounterPath for CellPath {
    const NAME: &'static str = "cell";

    fn create(n: usize, max_ops: usize) -> Vec<Self> {
        CellUniversal::new(Counter::new(0), n, max_ops).into_iter().map(CellPath).collect()
    }

    fn create_capped(n: usize, max_ops: usize, capacity: usize) -> Vec<Self> {
        CellUniversal::with_capacity(Counter::new(0), n, max_ops, capacity)
            .into_iter()
            .map(CellPath)
            .collect()
    }

    fn invoke(&mut self, op: CounterOp) -> CounterResp {
        self.0.invoke(op)
    }

    fn try_invoke(&mut self, op: CounterOp) -> Result<CounterResp, UniversalError> {
        self.0.try_invoke(op)
    }

    fn tid(&self) -> usize {
        self.0.tid()
    }

    fn max_threading_steps(&self) -> usize {
        self.0.max_threading_steps()
    }
}

// ---------------------------------------------------------------------
// Ordering-contract plumbing: load the workspace sources and extract
// the contract the same way `wf-lint` does, so tests can pin the pair
// graph statically and cross-validate it dynamically.
// ---------------------------------------------------------------------

use std::fs;
use std::path::Path;

/// Every `.rs` file in the workspace as `(workspace-relative path,
/// source)`, `/`-separated, sorted — the same corpus `wf-lint` scans.
/// The root test binaries run with the workspace root as
/// `CARGO_MANIFEST_DIR`, so no upward search is needed.
pub fn workspace_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    collect_rs(root, root, &mut out);
    out.sort();
    out
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {rel}: {e}"));
            out.push((rel, src));
        }
    }
}
