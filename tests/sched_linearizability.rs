//! Deterministic schedule exploration over the real `waitfree-sync`
//! implementations (feature `sched`), with machine-checked
//! linearizability verdicts — the workspace's middle validation tier
//! (DESIGN.md, "Three validation tiers").
//!
//! * Seed campaigns: ≥ 1000 random-walk and ≥ 1000 PCT schedules per
//!   object over the universal constructions (both decide modes: batch
//!   combining and per-op), the typed wrappers riding the combining
//!   path, the Herlihy–Wing FAA queue and the lock-free baselines,
//!   every history checked against its sequential specification.
//! * A deliberately broken consensus object (the decide CAS downgraded
//!   to a load followed by a store) whose agreement violation must be
//!   caught, printed as a replayable failing schedule, and reproduced
//!   bit-for-bit from its seed.
//! * Bounded exhaustive DFS over tiny configurations.
//! * The PR 2 hint-ordering bug pinned as a fixed scripted schedule.
//! * Composition with `waitfree-faults` failpoints (feature
//!   `failpoints` on top): injected crashes leave pending operations
//!   that still linearize under `MayTakeEffect`, and injected yields
//!   become deterministic schedule points.

#![cfg(feature = "sched")]

mod common;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock};

use waitfree::model::{ObjectSpec, Pid};
use waitfree::objects::assignment::{AssignBank, AssignOp};
use waitfree::objects::consensus_obj::{ConsensusObj, DecideOp};
use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::objects::memory::{MemOp, MemoryBank};
use waitfree::objects::queue::{FifoQueue, QueueOp, QueueResp};
use waitfree::objects::register::{RegOp, RegResp, RwRegister};
use waitfree::objects::stack::{Stack, StackOp, StackResp};
use waitfree::sched::atomic::{AtomicI64, Ordering};
use waitfree::sched::thread as vthread;
use waitfree::sched::{
    campaign, campaign_with, replay, run, run_and_check, AtomicOp, Contract, Dfs, Explore,
    HistoryRecorder, RunOptions, Script, SiteSpec,
};
use waitfree::store::{Bump, ShardedStore, StoreConfig, StoreModel, StoreOp, StoreResp};
use waitfree::sync::consensus::UsizeConsensus;
use waitfree::sync::faa_queue::FaaQueue;
use waitfree::sync::lockfree::{MsQueue, TreiberStack};
use waitfree::sync::universal::WfUniversal;
use waitfree::sync::universal_cell::CellUniversal;
use waitfree::sync::wrappers::{
    WfCounterHandle, WfQueueHandle, WfRegisterHandle, WfStackHandle,
};

/// Seeds per strategy family in the campaign tests (acceptance floor:
/// ≥ 1000 random-walk and ≥ 1000 PCT schedules per object).
const SEEDS: u64 = 1000;

fn explores() -> [Explore; 2] {
    [
        Explore::RandomWalk,
        Explore::Pct { depth: 3, est_steps: 400 },
    ]
}

/// The workspace ordering contract — the same site table and pair
/// graph `wf-lint --contract-json` emits, extracted once from the
/// checked-out sources so the dynamic cross-validation below always
/// judges against the contract that matches the code under test.
///
/// Mutant-gated statements are included exactly when the corresponding
/// feature is compiled in, so under `mutant-unpaired-acquire` the
/// executing (mis-labeled) `hint` load resolves to *its* declaration,
/// not the shipped twin's.
fn ordering_contract() -> &'static Contract {
    static CONTRACT: OnceLock<Contract> = OnceLock::new();
    CONTRACT.get_or_init(|| {
        let files = common::workspace_sources();
        let include_mutants = cfg!(any(
            feature = "mutant-unpaired-acquire",
            feature = "mutant-relaxed-hint"
        ));
        let result = waitfree_analyze::contract::extract_contract(&files, include_mutants);
        if !include_mutants {
            // The shipped pair graph must be clean; the mutant builds
            // deliberately dangle (pinned by tests/contract.rs).
            assert!(result.findings.is_empty(), "{:?}", result.findings);
        }
        Contract {
            sites: result
                .contract
                .sites
                .into_iter()
                .map(|s| SiteSpec {
                    label: s.label,
                    file: s.file,
                    start: s.start,
                    end: s.end,
                    pairs: s.pairs,
                })
                .collect(),
            files: result.contract.files,
        }
    })
}

/// Sweep both strategy families over `body` and require every explored
/// schedule to produce a linearizable history *and* a trace whose
/// observed synchronization edges all fall inside the declared
/// ordering contract. Returns the `(release label, acquire site)`
/// pairs the sweep exercised, for the coverage assertion below.
fn sweep_exercising<S, F>(name: &str, initial: &S, mut body: F) -> BTreeSet<(String, String)>
where
    S: ObjectSpec,
    F: FnMut(HistoryRecorder<S>),
{
    let contract = ordering_contract();
    let opts = RunOptions::default();
    let mut exercised = BTreeSet::new();
    for explore in explores() {
        let report =
            campaign_with(initial, &explore, 0..SEEDS, &opts, Some(contract), &mut body);
        assert_eq!(report.runs, SEEDS as usize);
        assert!(
            report.all_linearizable(),
            "{name} under {explore:?}: {} failing schedule(s), first:\n{}",
            report.failures.len(),
            report.failures[0],
        );
        exercised.extend(report.exercised);
    }
    exercised
}

/// [`sweep_exercising`] when the caller only wants the verdicts.
fn sweep<S, F>(name: &str, initial: &S, body: F)
where
    S: ObjectSpec,
    F: FnMut(HistoryRecorder<S>),
{
    let _ = sweep_exercising(name, initial, body);
}

// ---------------------------------------------------------------------
// Campaign workloads: two virtual threads, a handful of operations.
// ---------------------------------------------------------------------

fn universal_counter_body(rec: HistoryRecorder<Counter>) {
    let handles = WfUniversal::new(Counter::new(0), 2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(h.tid());
                for i in 0..2 {
                    let op = CounterOp::FetchAndAdd((10 * h.tid() + i + 1) as i64);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn cell_universal_counter_body(rec: HistoryRecorder<Counter>) {
    let handles = CellUniversal::new(Counter::new(0), 2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(h.tid());
                for i in 0..2 {
                    let op = CounterOp::FetchAndAdd((10 * h.tid() + i + 1) as i64);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn per_op_universal_counter_body(rec: HistoryRecorder<Counter>) {
    let handles = WfUniversal::new_per_op(Counter::new(0), 2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(h.tid());
                for i in 0..2 {
                    let op = CounterOp::FetchAndAdd((10 * h.tid() + i + 1) as i64);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

// The typed wrappers (`waitfree::sync::wrappers`) ride the combining
// path — `create` builds `WfUniversal::new`, the batched default — so
// these campaigns double as batched-path coverage for every object
// class the paper's universality theorem promises.

fn wf_queue_body(rec: HistoryRecorder<FifoQueue>) {
    let handles = WfQueueHandle::create(2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(t, mut h)| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(t);
                if t == 0 {
                    for v in [1i64, 2] {
                        rec.record(pid, QueueOp::Enq(v), || {
                            h.enq(v);
                            QueueResp::Ack
                        });
                    }
                } else {
                    for _ in 0..3 {
                        rec.record(pid, QueueOp::Deq, || match h.deq() {
                            Some(v) => QueueResp::Item(v),
                            None => QueueResp::Empty,
                        });
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn wf_stack_body(rec: HistoryRecorder<Stack>) {
    let handles = WfStackHandle::create(2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(t, mut h)| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(t);
                if t == 0 {
                    for v in [1i64, 2] {
                        rec.record(pid, StackOp::Push(v), || {
                            h.push(v);
                            StackResp::Ack
                        });
                    }
                } else {
                    for _ in 0..3 {
                        rec.record(pid, StackOp::Pop, || match h.pop() {
                            Some(v) => StackResp::Item(v),
                            None => StackResp::Empty,
                        });
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn wf_counter_body(rec: HistoryRecorder<Counter>) {
    let handles = WfCounterHandle::create(2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(t, mut h)| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(t);
                for i in 0..2 {
                    let delta = (10 * t + i + 1) as i64;
                    rec.record(pid, CounterOp::FetchAndAdd(delta), || {
                        CounterResp::Value(h.fetch_add(delta))
                    });
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn wf_register_body(rec: HistoryRecorder<RwRegister>) {
    let handles = WfRegisterHandle::create(2, 8, 0);
    let workers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(t, mut h)| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(t);
                if t == 0 {
                    for v in [7i64, 8] {
                        rec.record(pid, RegOp::Write(v), || {
                            h.write(v);
                            RegResp::Written
                        });
                    }
                } else {
                    for _ in 0..2 {
                        rec.record(pid, RegOp::Read, || RegResp::Read(h.read()));
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

// The §3.5/§3.6 hierarchy objects, universalized: `Move`/`Swap` and
// atomic n-register assignment return nothing, so linearizability of
// their histories leans entirely on the *reads* observing a state
// consistent with some atomic ordering of the silent mutations — the
// ROADMAP carry-over gap this file closes.

fn memory_bank_body(rec: HistoryRecorder<MemoryBank>) {
    let handles = WfUniversal::new(MemoryBank::from_values(vec![1, 2, 3]), 2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(h.tid());
                let script: Vec<MemOp> = if h.tid() == 0 {
                    vec![MemOp::Move { src: 0, dst: 1 }, MemOp::Read(1)]
                } else {
                    vec![MemOp::Swap { a: 1, b: 2 }, MemOp::Read(2)]
                };
                for op in script {
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn assign_bank_body(rec: HistoryRecorder<AssignBank>) {
    let handles = WfUniversal::new(AssignBank::new(3, 2, -1), 2, 8);
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(h.tid());
                let script: Vec<AssignOp> = if h.tid() == 0 {
                    vec![AssignOp::Assign(vec![(0, 5), (2, 7)]), AssignOp::Read(2)]
                } else {
                    vec![AssignOp::Assign(vec![(1, 6), (2, 9)]), AssignOp::Read(0)]
                };
                for op in script {
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

// Dynamic membership under the scheduler: each virtual thread is a
// *sequence* of clients — register, operate, retire, respawn — so the
// explored interleavings cover slot claim races, recycled-slot replay,
// and helpers scanning mid-retirement slots. The recording Pid is the
// worker index, not the (reused) registry slot.

fn universal_churn_body(rec: HistoryRecorder<Counter>) {
    let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let (obj, rec) = (obj.clone(), rec.clone());
            vthread::spawn(move || {
                let pid = Pid(t);
                for gen in 0..2 {
                    let mut h = obj.register();
                    let op = CounterOp::FetchAndAdd((100 * t + 10 * gen + 1) as i64);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                    h.retire();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

fn faa_queue_body(rec: HistoryRecorder<FifoQueue>) {
    let q = Arc::new(FaaQueue::new(8));
    let producer = {
        let (q, rec) = (Arc::clone(&q), rec.clone());
        vthread::spawn(move || {
            for v in [1i64, 2] {
                rec.record(Pid(0), QueueOp::Enq(v), || {
                    q.enq(v);
                    QueueResp::Ack
                });
            }
        })
    };
    let consumer = {
        let (q, rec) = (Arc::clone(&q), rec.clone());
        vthread::spawn(move || {
            for _ in 0..3 {
                rec.record(Pid(1), QueueOp::Deq, || match q.try_deq() {
                    Some(v) => QueueResp::Item(v),
                    None => QueueResp::Empty,
                });
            }
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();
}

fn treiber_stack_body(rec: HistoryRecorder<Stack>) {
    let s = Arc::new(TreiberStack::new());
    let pusher = {
        let (s, rec) = (Arc::clone(&s), rec.clone());
        vthread::spawn(move || {
            for v in [1i64, 2] {
                rec.record(Pid(0), StackOp::Push(v), || {
                    s.push(v);
                    StackResp::Ack
                });
            }
        })
    };
    let popper = {
        let (s, rec) = (Arc::clone(&s), rec.clone());
        vthread::spawn(move || {
            for _ in 0..3 {
                rec.record(Pid(1), StackOp::Pop, || match s.pop() {
                    Some(v) => StackResp::Item(v),
                    None => StackResp::Empty,
                });
            }
        })
    };
    pusher.join().unwrap();
    popper.join().unwrap();
}

fn ms_queue_body(rec: HistoryRecorder<FifoQueue>) {
    let q = Arc::new(MsQueue::new());
    let producer = {
        let (q, rec) = (Arc::clone(&q), rec.clone());
        vthread::spawn(move || {
            for v in [1i64, 2] {
                rec.record(Pid(0), QueueOp::Enq(v), || {
                    q.enq(v);
                    QueueResp::Ack
                });
            }
        })
    };
    let consumer = {
        let (q, rec) = (Arc::clone(&q), rec.clone());
        vthread::spawn(move || {
            for _ in 0..3 {
                rec.record(Pid(1), QueueOp::Deq, || match q.deq() {
                    Some(v) => QueueResp::Item(v),
                    None => QueueResp::Empty,
                });
            }
        })
    };
    producer.join().unwrap();
    consumer.join().unwrap();
}

/// Log growth past `SEGMENT_SIZE` (64) plus every read-side API: two
/// workers decide 72 positions between them, so one of them installs
/// the second log segment and the other's replay walk, `try_read`,
/// `refresh` and `decided_log` traversals all acquire from that
/// install; the main thread's `Debug` format and segment accessors
/// exercise the observer loads. Built for the coverage test below —
/// the short campaign bodies never fill a segment.
fn universal_log_growth_body(rec: HistoryRecorder<Counter>) {
    let obj = WfUniversal::new_dynamic_per_op(Counter::new(0), 96);
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let (obj, rec) = (obj.clone(), rec.clone());
            vthread::spawn(move || {
                let mut h = obj.register();
                let pid = Pid(t);
                for _ in 0..36 {
                    let op = CounterOp::FetchAndAdd(1);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
                // Unrecorded reads: invisible to the linearizability
                // checker, but their Acquire loads land in the trace
                // and must all resolve inside the ordering contract.
                let _ = h.try_read(|s| s.value());
                if t == 0 {
                    let _ = h.refresh();
                } else {
                    let _ = h.decided_log();
                    let _ = h.segments();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let _ = format!("{obj:?}");
    let _ = obj.installed_segments();
}

/// Same-role contention on the lock-free baselines: two pushers and
/// two poppers (with `is_empty` probes) on one stack, so push reads
/// push, pop reads pop, and racing retires read each other — the
/// edges a single-producer/single-consumer body can never exercise
/// cross-thread.
fn treiber_contention_body(rec: HistoryRecorder<Stack>) {
    let s = Arc::new(TreiberStack::new());
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let (s, rec) = (Arc::clone(&s), rec.clone());
            vthread::spawn(move || {
                let pid = Pid(t);
                let _ = s.is_empty();
                for i in 0..2 {
                    if t < 2 {
                        let v = (10 * t + i) as i64;
                        rec.record(pid, StackOp::Push(v), || {
                            s.push(v);
                            StackResp::Ack
                        });
                    } else {
                        rec.record(pid, StackOp::Pop, || match s.pop() {
                            Some(v) => StackResp::Item(v),
                            None => StackResp::Empty,
                        });
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

/// Same-role contention on the Michael–Scott queue: two enqueuers and
/// two dequeuers, so an enqueuer's tail/next loads read the *other*
/// enqueuer's link and swing CASes, and a dequeuer's loads read the
/// other dequeuer's help-swing — including every lagging-tail repair
/// pair.
fn ms_queue_contention_body(rec: HistoryRecorder<FifoQueue>) {
    let q = Arc::new(MsQueue::new());
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let (q, rec) = (Arc::clone(&q), rec.clone());
            vthread::spawn(move || {
                let pid = Pid(t);
                for i in 0..2 {
                    if t < 2 {
                        let v = (10 * t + i) as i64;
                        rec.record(pid, QueueOp::Enq(v), || {
                            q.enq(v);
                            QueueResp::Ack
                        });
                    } else {
                        rec.record(pid, QueueOp::Deq, || match q.deq() {
                            Some(v) => QueueResp::Item(v),
                            None => QueueResp::Empty,
                        });
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

/// Checkpoint images on the read side: an aggressive checkpoint
/// cadence plus `try_read`, `refresh` and `decided_log` traversals, so
/// those walks acquire from a checkpoint-install CAS decided by the
/// *other* thread (the plain checkpointed body never replays through
/// a foreign checkpoint via the read-only APIs).
fn checkpointed_reader_body(rec: HistoryRecorder<Counter>) {
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 8, 2);
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let (obj, rec) = (obj.clone(), rec.clone());
            vthread::spawn(move || {
                let pid = Pid(t);
                let mut h = obj.register();
                for _ in 0..3 {
                    let op = CounterOp::FetchAndAdd(1);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                }
                let _ = h.try_read(|s| s.value());
                if t == 0 {
                    let _ = h.refresh();
                } else {
                    let _ = h.decided_log();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

/// Registry growth past `REGISTRY_SEGMENT` (8): two workers register
/// five handles each and keep them live, so slot indices reach 9 and
/// one worker installs the second registry segment while the other's
/// slot walks (`reg_slot`, `for_each_slot`, `pending_range`) acquire
/// from the install — and when both cross the boundary concurrently,
/// the loser's install CAS acquires the winner's. Combining mode, so
/// the collect path walks every registered slot.
fn universal_registry_growth_body(rec: HistoryRecorder<Counter>) {
    let obj = WfUniversal::new_dynamic(Counter::new(0), 16);
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let (obj, rec) = (obj.clone(), rec.clone());
            vthread::spawn(move || {
                let pid = Pid(t);
                let mut handles = Vec::new();
                for _ in 0..5 {
                    let mut h = obj.register();
                    let op = CounterOp::FetchAndAdd(1);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                    handles.push(h); // stays live: indices keep growing
                }
                // One more op with all ten slots live, so the
                // combining collect walks the full grown registry.
                let h = handles.last_mut().unwrap();
                let op = CounterOp::FetchAndAdd(1);
                rec.record(pid, op.clone(), || h.invoke(op.clone()));
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn universal_counter_campaigns_linearize() {
    sweep("WfUniversal<Counter>", &Counter::new(0), universal_counter_body);
}

/// Checkpointed truncation under churn: an aggressive cadence (a
/// checkpoint attempt every 2 positions) runs inside every explored
/// schedule, interleaving checkpoint CASes, frontier publishes and
/// reclaim passes among the op decides — and late registrants bootstrap
/// from whatever checkpoint the schedule happened to decide. Every
/// schedule must still linearize.
fn checkpointed_universal_counter_body(rec: HistoryRecorder<Counter>) {
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 4, 2);
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let (obj, rec) = (obj.clone(), rec.clone());
            vthread::spawn(move || {
                let pid = Pid(t);
                for gen in 0..2 {
                    let mut h = obj.register();
                    let op = CounterOp::FetchAndAdd((100 * t + 10 * gen + 1) as i64);
                    rec.record(pid, op.clone(), || h.invoke(op.clone()));
                    h.retire();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn checkpointed_universal_campaigns_linearize() {
    sweep(
        "WfUniversal<Counter> (checkpointed churn)",
        &Counter::new(0),
        checkpointed_universal_counter_body,
    );
}

#[test]
fn cell_universal_counter_campaigns_linearize() {
    sweep(
        "CellUniversal<Counter>",
        &Counter::new(0),
        cell_universal_counter_body,
    );
}

#[test]
fn per_op_universal_counter_campaigns_linearize() {
    sweep(
        "WfUniversal<Counter> (per-op)",
        &Counter::new(0),
        per_op_universal_counter_body,
    );
}

#[test]
fn wf_queue_wrapper_campaigns_linearize() {
    sweep("WfQueueHandle", &FifoQueue::new(), wf_queue_body);
}

#[test]
fn wf_stack_wrapper_campaigns_linearize() {
    sweep("WfStackHandle", &Stack::new(), wf_stack_body);
}

#[test]
fn wf_counter_wrapper_campaigns_linearize() {
    sweep("WfCounterHandle", &Counter::new(0), wf_counter_body);
}

#[test]
fn wf_register_wrapper_campaigns_linearize() {
    sweep("WfRegisterHandle", &RwRegister::new(0), wf_register_body);
}

#[test]
fn memory_bank_campaigns_linearize() {
    sweep(
        "WfUniversal<MemoryBank>",
        &MemoryBank::from_values(vec![1, 2, 3]),
        memory_bank_body,
    );
}

#[test]
fn assign_bank_campaigns_linearize() {
    sweep(
        "WfUniversal<AssignBank>",
        &AssignBank::new(3, 2, -1),
        assign_bank_body,
    );
}

#[test]
fn universal_churn_campaigns_linearize() {
    sweep(
        "WfUniversal<Counter> (churn)",
        &Counter::new(0),
        universal_churn_body,
    );
}

/// The happens-before verdict over churn schedules: every plain load in
/// every explored interleaving of register → invoke → retire → respawn
/// must be justified by declared release/acquire (or SeqCst) edges —
/// the registry's claim CAS, slot state, announce chunk links, and
/// `slots_hi` high-water carry enough ordering on their own, with no
/// hidden help from the scheduler's SC serialization.
#[test]
fn universal_churn_schedules_satisfy_happens_before() {
    for seed in 0..SEEDS {
        let res = run(
            waitfree::sched::RandomWalk::new(seed),
            RunOptions::default(),
            || {
                let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
                let workers: Vec<_> = (0..2)
                    .map(|t| {
                        let obj = obj.clone();
                        vthread::spawn(move || {
                            for gen in 0..2 {
                                let mut h = obj.register();
                                h.invoke(CounterOp::FetchAndAdd((100 * t + 10 * gen + 1) as i64));
                                h.retire();
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().unwrap();
                }
            },
        );
        assert!(res.error.is_none(), "seed {seed}: {:?}", res.error);
        let hb = waitfree::sched::hb_check(&res.trace);
        assert!(
            hb.is_clean(),
            "seed {seed}: membership orderings too weak \
             ({} of {} reads unjustified): {}",
            hb.violations.len(),
            hb.reads_checked,
            hb.violations[0]
        );
        assert!(hb.reads_checked > 0, "seed {seed}: no loads judged");
    }
}

/// The happens-before verdict over checkpointed schedules: the
/// checkpoint/reclaim protocol (checkpoint CAS, `cp_pos` advance,
/// frontier publication, hazard publish/validate, segment detach) is
/// uniformly SeqCst by design — so every explored interleaving must
/// justify its plain loads from declared edges alone. A relaxation
/// smuggled into the new protocol words would surface here as an
/// unjustified read.
#[test]
fn checkpointed_schedules_satisfy_happens_before() {
    for seed in 0..SEEDS {
        let res = run(
            waitfree::sched::RandomWalk::new(seed),
            RunOptions::default(),
            || {
                let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 4, 2);
                let workers: Vec<_> = (0..2)
                    .map(|t| {
                        let obj = obj.clone();
                        vthread::spawn(move || {
                            for gen in 0..2 {
                                let mut h = obj.register();
                                h.invoke(CounterOp::FetchAndAdd((100 * t + 10 * gen + 1) as i64));
                                h.retire();
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().unwrap();
                }
            },
        );
        assert!(res.error.is_none(), "seed {seed}: {:?}", res.error);
        let hb = waitfree::sched::hb_check(&res.trace);
        assert!(
            hb.is_clean(),
            "seed {seed}: checkpoint/reclaim orderings too weak \
             ({} of {} reads unjustified): {}",
            hb.violations.len(),
            hb.reads_checked,
            hb.violations[0]
        );
        assert!(hb.reads_checked > 0, "seed {seed}: no loads judged");
    }
}

/// The combining layer is not dead code under the schedule explorer:
/// some random-walk interleaving parks one thread between announce and
/// decide long enough for the other's collect scan to pick both ops up,
/// and the decided log then shows strictly fewer positions than
/// operations. (Every schedule must also flatten to a log that carries
/// all four operations exactly once here — no contention, no crashes.)
#[test]
fn some_schedule_forms_a_multi_op_batch() {
    let mut witnessed = false;
    for seed in 0..SEEDS {
        let out: Arc<Mutex<Option<(usize, usize)>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&out);
        let res = run(
            waitfree::sched::RandomWalk::new(seed),
            RunOptions::default(),
            move || {
                let handles = WfUniversal::new(Counter::new(0), 2, 8);
                let workers: Vec<_> = handles
                    .into_iter()
                    .map(|mut h| {
                        vthread::spawn(move || {
                            for i in 0..2 {
                                h.invoke(CounterOp::FetchAndAdd((10 * h.tid() + i + 1) as i64));
                            }
                            h
                        })
                    })
                    .collect();
                let hs: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
                *sink.lock().unwrap() =
                    Some((hs[0].decided_batches().len(), hs[0].decided_log().len()));
            },
        );
        assert!(res.error.is_none(), "seed {seed}: {:?}", res.error);
        let (positions, ops) = out.lock().unwrap().take().unwrap();
        assert_eq!(ops, 4, "seed {seed}: flattened log carries every op once");
        assert!(positions <= ops);
        if positions < ops {
            witnessed = true;
            break;
        }
    }
    assert!(
        witnessed,
        "no random-walk schedule in {SEEDS} seeds ever combined two ops into one decide"
    );
}

#[test]
fn faa_queue_campaigns_linearize() {
    sweep("FaaQueue", &FifoQueue::new(), faa_queue_body);
}

#[test]
fn treiber_stack_campaigns_linearize() {
    sweep("TreiberStack", &Stack::new(), treiber_stack_body);
}

#[test]
fn ms_queue_campaigns_linearize() {
    sweep("MsQueue", &FifoQueue::new(), ms_queue_body);
}

/// Coverage closes the static↔dynamic loop: every `(release site,
/// acquire site)` pair the contract declares in `crates/sync` must be
/// *observed* as a real synchronization edge by the 1000-seed
/// campaigns — a declared pair no schedule can exercise is either dead
/// annotation or a workload gap, and both deserve a failing test. The
/// growth bodies exist exactly for this: segment and registry installs
/// never fire in the short bodies. Pairs no bounded campaign can
/// reach are pinned in the allowlist below with the reason.
#[test]
fn declared_sync_pairs_are_exercised_by_campaigns() {
    let contract = ordering_contract();
    let mut exercised = BTreeSet::new();
    exercised.extend(sweep_exercising(
        "WfUniversal<Counter> (per-op)",
        &Counter::new(0),
        per_op_universal_counter_body,
    ));
    exercised.extend(sweep_exercising(
        "WfUniversal<Counter> (churn)",
        &Counter::new(0),
        universal_churn_body,
    ));
    exercised.extend(sweep_exercising(
        "WfUniversal<Counter> (checkpointed churn)",
        &Counter::new(0),
        checkpointed_universal_counter_body,
    ));
    exercised.extend(sweep_exercising(
        "WfUniversal<Counter> (log growth)",
        &Counter::new(0),
        universal_log_growth_body,
    ));
    exercised.extend(sweep_exercising(
        "WfUniversal<Counter> (registry growth)",
        &Counter::new(0),
        universal_registry_growth_body,
    ));
    exercised.extend(sweep_exercising(
        "WfUniversal<Counter> (checkpointed readers)",
        &Counter::new(0),
        checkpointed_reader_body,
    ));
    exercised.extend(sweep_exercising(
        "TreiberStack",
        &Stack::new(),
        treiber_stack_body,
    ));
    exercised.extend(sweep_exercising(
        "TreiberStack (contention)",
        &Stack::new(),
        treiber_contention_body,
    ));
    exercised.extend(sweep_exercising("MsQueue", &FifoQueue::new(), ms_queue_body));
    exercised.extend(sweep_exercising(
        "MsQueue (contention)",
        &FifoQueue::new(),
        ms_queue_contention_body,
    ));

    // Declared pairs no bounded 1000-seed campaign can exercise, with
    // the reason each is pinned rather than deleted.
    let allowlist: &[(&str, &str, &str)] = &[(
        "universal.seg_count",
        "universal.seg_count",
        "the installer-chain edge needs two segment installs by different \
         threads, i.e. > 128 decided log positions; campaign bodies stay an \
         order of magnitude smaller to keep 2000 schedules per body tractable",
    )];

    let missing: Vec<String> = contract
        .declared_pairs()
        .into_iter()
        .filter(|(rel, acq)| {
            let in_sync = |id: &str| id.starts_with("crates/sync/") || !id.contains('/');
            in_sync(rel) && in_sync(acq)
        })
        .filter(|(rel, acq)| {
            !exercised.contains(&(rel.clone(), acq.clone()))
                && !allowlist.iter().any(|(r, a, _)| r == rel && a == acq)
        })
        .map(|(rel, acq)| format!("{rel} -> {acq}"))
        .collect();
    assert!(
        missing.is_empty(),
        "{} declared pair(s) never exercised by any campaign:\n{}",
        missing.len(),
        missing.join("\n")
    );
    // The allowlist must not rot: an entry that *is* exercised now has
    // lost its reason to exist.
    for (rel, acq, why) in allowlist {
        assert!(
            !exercised.contains(&((*rel).to_string(), (*acq).to_string())),
            "allowlisted pair ({rel} -> {acq}) is now exercised — drop it ({why})"
        );
    }
}

// ---------------------------------------------------------------------
// The broken object: decide by load-then-store instead of CAS.
// ---------------------------------------------------------------------

const UNDECIDED: i64 = i64::MIN;

/// Deliberately broken consensus: Theorem 7's protocol with the
/// compare-and-swap torn into a load followed by a store. Two proposers
/// can both observe `UNDECIDED` and both believe they won — exactly the
/// lost-update race the single CAS exists to close.
#[derive(Debug)]
struct BrokenConsensus {
    cell: AtomicI64,
}

impl BrokenConsensus {
    fn new() -> Self {
        BrokenConsensus { cell: AtomicI64::new(UNDECIDED) }
    }

    fn decide(&self, v: i64) -> i64 {
        let cur = self.cell.load(Ordering::SeqCst);
        if cur != UNDECIDED {
            return cur;
        }
        // A schedule point sits between the load above and this store:
        // the scheduler can interleave the other proposer's whole decide
        // here, and the checker must notice the disagreement.
        self.cell.store(v, Ordering::SeqCst);
        v
    }
}

fn broken_consensus_body(rec: HistoryRecorder<ConsensusObj>) {
    let c = Arc::new(BrokenConsensus::new());
    let workers: Vec<_> = (0..2)
        .map(|t| {
            let (c, rec) = (Arc::clone(&c), rec.clone());
            vthread::spawn(move || {
                let v = (t as i64 + 1) * 11;
                rec.record(Pid(t), DecideOp(v), || c.decide(v));
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn broken_consensus_is_caught_and_replayable() {
    let opts = RunOptions::default();
    let report = campaign(
        &ConsensusObj::new(),
        &Explore::RandomWalk,
        0..SEEDS,
        &opts,
        broken_consensus_body,
    );
    assert!(
        !report.all_linearizable(),
        "the load+store consensus must yield non-linearizable histories"
    );
    let failure = &report.failures[0];
    // The campaign already printed it to stderr; print the replay target
    // here too so the failing seed is visible in the test output.
    println!("caught:\n{failure}");

    // Replaying the seed reproduces the exact decision trace and verdict.
    let again = replay(
        &ConsensusObj::new(),
        &Explore::RandomWalk,
        failure.seed,
        opts,
        broken_consensus_body,
    );
    assert!(!again.is_ok(), "replay of seed {} must fail again", failure.seed);
    assert_eq!(
        again.run.decisions, failure.decisions,
        "replay reproduces the decision trace bit for bit"
    );
}

// ---------------------------------------------------------------------
// Bounded exhaustive DFS over tiny configurations.
// ---------------------------------------------------------------------

/// Drive one consensus race (`threads` proposers, proposer `t` proposes
/// `t + 1`) under `strategy`; returns every proposer's returned winner.
fn consensus_race(
    strategy: waitfree::sched::DfsStrategy,
    threads: usize,
) -> (Vec<usize>, waitfree::sched::RunResult) {
    let results: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let inner = Arc::clone(&results);
    let res = run(strategy, RunOptions::default(), move || {
        let c = Arc::new(UsizeConsensus::new());
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let (c, out) = (Arc::clone(&c), Arc::clone(&inner));
                vthread::spawn(move || {
                    let w = c.decide(t + 1);
                    out.lock().unwrap().push(w);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    });
    let got = results.lock().unwrap().clone();
    (got, res)
}

#[test]
fn dfs_exhausts_two_thread_consensus() {
    let mut dfs = Dfs::new(None);
    while let Some(strategy) = dfs.next_schedule() {
        assert!(
            dfs.schedules() <= 10_000,
            "two-thread consensus schedule space blew the cap (ROADMAP: DFS state caps)"
        );
        let (got, res) = consensus_race(strategy, 2);
        assert!(res.error.is_none(), "{:?}", res.error);
        assert_eq!(got.len(), 2);
        assert!(got.windows(2).all(|w| w[0] == w[1]), "agreement: {got:?}");
        assert!((1..=2).contains(&got[0]), "validity: {got:?}");
    }
    assert!(dfs.exhausted());
    assert!(
        dfs.schedules() > 1,
        "exhaustive search must explore more than one interleaving"
    );
}

#[test]
fn bounded_dfs_three_thread_consensus_agrees() {
    // Three proposers with a preemption bound of 1; the voluntary
    // (spawn/block/exit) points still branch fully, so cap the sweep —
    // lifting the cap is tracked as a ROADMAP open item.
    const CAP: usize = 5000;
    let mut dfs = Dfs::new(Some(1));
    while let Some(strategy) = dfs.next_schedule() {
        let (got, res) = consensus_race(strategy, 3);
        assert!(res.error.is_none(), "{:?}", res.error);
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0] == w[1]), "agreement: {got:?}");
        assert!((1..=3).contains(&got[0]), "validity: {got:?}");
        if dfs.schedules() >= CAP {
            break;
        }
    }
    assert!(dfs.schedules() > 1);
}

fn universal_one_op_body(rec: HistoryRecorder<Counter>) {
    let handles = WfUniversal::new(Counter::new(0), 2, 4);
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let rec = rec.clone();
            vthread::spawn(move || {
                let pid = Pid(h.tid());
                let op = CounterOp::FetchAndAdd(1 + h.tid() as i64);
                rec.record(pid, op.clone(), || h.invoke(op.clone()));
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn bounded_dfs_universal_single_ops_linearize() {
    // One operation per thread through the pointer-CAS universal object,
    // every schedule with at most one atomic-point preemption. The
    // universal hot path has many atomic steps, so cap the sweep
    // (ROADMAP open item: DFS state caps / partial-order reduction).
    const CAP: usize = 4000;
    let mut dfs = Dfs::new(Some(1));
    let mut runs = 0usize;
    while let Some(strategy) = dfs.next_schedule() {
        runs += 1;
        let checked = run_and_check(
            &Counter::new(0),
            strategy,
            RunOptions::default(),
            universal_one_op_body,
        );
        assert!(
            checked.is_ok(),
            "bounded-DFS schedule {runs} failed; decisions: {:?}",
            checked.run.decisions
        );
        if runs >= CAP {
            break;
        }
    }
    assert!(runs > 1);
}

// ---------------------------------------------------------------------
// The PR 2 hint-ordering bug as a pinned deterministic schedule.
// ---------------------------------------------------------------------

/// PR 2 fixed the log-tail *hint*: it is published with
/// `fetch_max(Release)` and read with `Acquire`, so a thread that starts
/// cold and jumps over the decided prefix is guaranteed to see the entry
/// contents its hint implies. With the original `Relaxed` orderings this
/// exact schedule — one thread completes three operations, then a second
/// thread runs its first operation from a cold start — is the
/// interleaving in which the jumper could act on a hint without the
/// matching entries. The scripted schedule pins the interleaving; the
/// assertions pin both the behavior (responses, decided log) and the
/// orderings in the recorded instruction trace.
/// Run the pinned publisher/jumper script and return the raw run plus
/// the observed responses and decided log. Shared by the shipped-path
/// test and the `mutant-relaxed-hint` regression below, so both judge
/// the *same* interleaving.
fn run_hint_schedule() -> (
    waitfree::sched::RunResult,
    Vec<CounterResp>,
    CounterResp,
    Vec<(usize, usize)>,
) {
    type Out = (Vec<CounterResp>, CounterResp, Vec<(usize, usize)>);
    let out: Arc<Mutex<Option<Out>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&out);
    // Script: always prefer vthread 1 (the publisher); fallbacks run the
    // main thread between the two phases and the jumper at the end.
    let result = run(Script::new(vec![1; 600]), RunOptions::default(), move || {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let jumper_handle = handles.pop().unwrap(); // tid 1
        let publisher_handle = handles.pop().unwrap(); // tid 0
        let publisher = vthread::spawn(move || {
            let mut h = publisher_handle;
            let resps: Vec<CounterResp> =
                (0..3).map(|_| h.invoke(CounterOp::FetchAndAdd(1))).collect();
            (h, resps)
        });
        let jumper = vthread::spawn(move || {
            let mut h = jumper_handle;
            let resp = h.invoke(CounterOp::FetchAndAdd(1));
            (h, resp)
        });
        let (pub_h, pub_resps) = publisher.join().unwrap();
        let (_jump_h, jump_resp) = jumper.join().unwrap();
        *sink.lock().unwrap() = Some((pub_resps, jump_resp, pub_h.decided_log()));
    });
    assert!(result.error.is_none(), "{:?}", result.error);
    let (pub_resps, jump_resp, log) = out.lock().unwrap().take().unwrap();
    (result, pub_resps, jump_resp, log)
}

#[test]
#[cfg(not(feature = "mutant-relaxed-hint"))]
fn hint_publication_regression_schedule() {
    let (result, pub_resps, jump_resp, log) = run_hint_schedule();
    assert_eq!(
        pub_resps,
        vec![
            CounterResp::Value(0),
            CounterResp::Value(1),
            CounterResp::Value(2)
        ],
        "publisher runs first and sees 0, 1, 2"
    );
    assert_eq!(jump_resp, CounterResp::Value(3), "jumper linearizes last");
    assert_eq!(
        log,
        vec![(0, 0), (0, 1), (0, 2), (1, 0)],
        "decided log: publisher's three ops, then the jumper's"
    );

    // The orderings PR 2 installed, pinned in the instruction trace: the
    // hint is published with fetch_max(Release) and read with Acquire,
    // and no usize-word atomic in this schedule is Relaxed (the segment
    // counter's fetch_add is AcqRel since the ordering audit).
    assert!(
        result
            .ops()
            .any(|e| e.op == AtomicOp::FetchMax && e.ordering == Ordering::Release),
        "hint publication (fetch_max Release) missing from trace"
    );
    assert!(
        result.ops().any(|e| e.atomic == "AtomicUsize"
            && e.op == AtomicOp::Load
            && e.ordering == Ordering::Acquire),
        "hint read (Acquire load) missing from trace"
    );
    assert!(
        !result.ops().any(|e| e.atomic == "AtomicUsize"
            && matches!(
                e.op,
                AtomicOp::Load | AtomicOp::Store | AtomicOp::FetchMax | AtomicOp::FetchAdd
            )
            && e.ordering == Ordering::Relaxed),
        "a Relaxed usize atomic crept back into the hot path"
    );

    // Happens-before verdict: with the shipped orderings, every plain
    // load in this schedule is justified by declared release/acquire
    // edges alone — the SC serialization is not doing hidden work.
    let hb = waitfree::sched::hb_check(&result.trace);
    assert!(
        hb.is_clean(),
        "declared orderings too weak ({} of {} reads unjustified): {}",
        hb.violations.len(),
        hb.reads_checked,
        hb.violations[0]
    );
    assert!(hb.reads_checked > 0, "the schedule judged no loads at all");

    // Contract cross-validation on the same trace: every observed
    // release→acquire edge in this schedule is declared in the pair
    // graph, and the hint edge itself shows up as an *exercised*
    // declared pair — the static contract and the dynamic trace agree
    // about this interleaving in both directions.
    let contract = ordering_contract();
    let hb = waitfree::sched::hb_check_with_contract(&result.trace, Some(contract));
    assert!(
        hb.undeclared.is_empty(),
        "undeclared synchronization edge(s): {}",
        hb.undeclared[0]
    );
    assert!(
        hb.exercised
            .iter()
            .any(|(rel, acq)| rel == "universal.hint_pub" && acq.contains("universal.rs")),
        "the pinned schedule must exercise the declared hint pair; got {:?}",
        hb.exercised
    );
}

/// The dynamic half of the `mutant-unpaired-acquire` gate: the mutant
/// compiles the *identical* instruction stream as the shipped code (an
/// `Acquire` hint load), but its annotation declares the wrong pair
/// (`universal.hint_stale`, a label no site defines). The static pass
/// pins the dangling label (tests/contract.rs); here the *observed*
/// hint edge resolves to the mutant's declaration, whose `pairs:` list
/// does not contain the releasing site's label — so the cross-check
/// must flag the edge as undeclared synchronization under the very
/// schedule that passes clean on the shipped annotations.
#[test]
#[cfg(feature = "mutant-unpaired-acquire")]
fn mutant_unpaired_acquire_is_flagged_by_the_contract_check() {
    let (result, _pub_resps, jump_resp, _log) = run_hint_schedule();
    // The executed code is untouched by the mutant: behavior matches
    // the shipped run, and the plain happens-before pass (no contract)
    // stays clean. Only the contract cross-check can see the lie.
    assert_eq!(jump_resp, CounterResp::Value(3), "jumper linearizes last");
    let plain = waitfree::sched::hb_check(&result.trace);
    assert!(plain.is_clean(), "mutant must not change executed orderings");

    let contract = ordering_contract();
    let hb = waitfree::sched::hb_check_with_contract(&result.trace, Some(contract));
    assert!(
        hb.undeclared
            .iter()
            .any(|e| e.to_string().contains("universal.hint_pub")),
        "contract check failed to flag the mis-declared hint edge; \
         undeclared: {:?}, exercised: {:?}",
        hb.undeclared,
        hb.exercised
    );
}

/// The PR 2 bug, resurrected behind `--features mutant-relaxed-hint`
/// (`publish_hint` downgraded to `fetch_max(Relaxed)`), must be flagged
/// by the happens-before checker under the very same scripted schedule
/// that passes clean on the shipped code. This proves the checker
/// catches the bug *class* mechanically, not just that the current
/// orderings happen to look right.
#[test]
#[cfg(feature = "mutant-relaxed-hint")]
fn mutant_relaxed_hint_is_flagged_by_the_hb_checker() {
    let (result, _pub_resps, _jump_resp, _log) = run_hint_schedule();

    // The mutant really is in play: the hint publish lost its Release.
    assert!(
        result
            .ops()
            .any(|e| e.op == AtomicOp::FetchMax && e.ordering == Ordering::Relaxed),
        "mutant not active — fetch_max(Relaxed) missing from trace"
    );

    // Under the scheduler's SC interleaving the run still *behaves*
    // (responses and the decided log are checked by the shipped test);
    // only the happens-before pass can see the missing edge.
    let hb = waitfree::sched::hb_check(&result.trace);
    assert!(
        !hb.is_clean(),
        "HB checker failed to flag the Relaxed hint publication \
         ({} reads judged, none unjustified)",
        hb.reads_checked
    );
}

// ---------------------------------------------------------------------
// Composition with the failpoint layer (feature `failpoints` on top).
// ---------------------------------------------------------------------

#[cfg(feature = "failpoints")]
mod with_failpoints {
    use super::*;
    use waitfree::faults::failpoints::{self, FailpointConfig, FaultAction};
    use waitfree::sched::RandomWalk;

    fn crash_aware_body(rec: HistoryRecorder<Counter>) {
        let handles = WfUniversal::new(Counter::new(0), 2, 8);
        let workers: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let rec = rec.clone();
                vthread::spawn(move || {
                    failpoints::set_tid(h.tid());
                    let pid = Pid(h.tid());
                    for i in 0..2 {
                        let op = CounterOp::FetchAndAdd((10 * h.tid() + i + 1) as i64);
                        rec.record(pid, op.clone(), || h.invoke(op.clone()));
                    }
                })
            })
            .collect();
        for w in workers {
            // The crashed vthread's join returns the crash signal.
            let _ = w.join();
        }
    }

    #[test]
    fn injected_crash_composes_with_deterministic_schedule() {
        let _guard = failpoints::exclusive();
        failpoints::clear();
        failpoints::configure(
            "universal::cas",
            FailpointConfig::once_for(FaultAction::Crash, 1, 1),
        );
        let checked = run_and_check(
            &Counter::new(0),
            RandomWalk::new(42),
            RunOptions::default(),
            crash_aware_body,
        );
        failpoints::clear();

        assert!(checked.run.error.is_none(), "{:?}", checked.run.error);
        assert_eq!(
            checked.run.crashed.len(),
            1,
            "exactly one vthread crashed: {:?}",
            checked.run.crashed
        );
        assert!(
            checked.history.has_pending(Pid(1)),
            "the op interrupted by the crash stays pending"
        );
        assert!(
            checked.report.outcome.is_ok(),
            "a pending crashed op linearizes under MayTakeEffect"
        );
    }

    fn churn_crash_body(rec: HistoryRecorder<Counter>) {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        let workers: Vec<_> = (0..2)
            .map(|t| {
                let (obj, rec) = (obj.clone(), rec.clone());
                vthread::spawn(move || {
                    failpoints::set_tid(t);
                    let pid = Pid(t);
                    for gen in 0..2 {
                        let mut h = obj.register();
                        let op = CounterOp::FetchAndAdd((100 * t + 10 * gen + 1) as i64);
                        rec.record(pid, op.clone(), || h.invoke(op.clone()));
                        h.retire();
                    }
                })
            })
            .collect();
        for w in workers {
            // The crashed vthread's join returns the crash signal.
            let _ = w.join();
        }
    }

    /// Crash-mid-retirement under a deterministic schedule: the victim
    /// dies inside `retire()` — after its generation's operation
    /// completed, after the slot went `RETIRED`, before reclamation.
    /// Nothing is left pending, so the history must linearize outright,
    /// and the survivor's remaining generations complete wait-free.
    #[test]
    fn injected_crash_mid_retirement_composes_with_deterministic_schedule() {
        let _guard = failpoints::exclusive();
        failpoints::clear();
        failpoints::configure(
            "universal::retire",
            FailpointConfig::once_for(FaultAction::Crash, 1, 1),
        );
        let checked = run_and_check(
            &Counter::new(0),
            RandomWalk::new(7),
            RunOptions::default(),
            churn_crash_body,
        );
        failpoints::clear();

        assert!(checked.run.error.is_none(), "{:?}", checked.run.error);
        assert_eq!(
            checked.run.crashed.len(),
            1,
            "exactly one vthread crashed mid-retirement: {:?}",
            checked.run.crashed
        );
        assert!(
            !checked.history.has_pending(Pid(1)),
            "a retire-site crash interrupts no operation"
        );
        assert!(
            checked.report.outcome.is_ok(),
            "survivor + crashed-mid-retirement history must linearize"
        );
    }

    #[test]
    fn injected_yields_are_deterministic_schedule_points() {
        let _guard = failpoints::exclusive();
        let run_once = || {
            failpoints::clear();
            failpoints::configure(
                "universal::cas",
                FailpointConfig::always(FaultAction::Yield),
            );
            let checked = run_and_check(
                &Counter::new(0),
                RandomWalk::new(9),
                RunOptions::default(),
                universal_counter_body,
            );
            let fired = failpoints::fires("universal::cas");
            failpoints::clear();
            (checked, fired)
        };
        let (a, fired_a) = run_once();
        let (b, fired_b) = run_once();

        assert!(fired_a > 0, "the yield failpoint never fired");
        assert_eq!(fired_a, fired_b, "fault injection itself is deterministic");
        assert!(a.is_ok() && b.is_ok());
        assert_eq!(
            a.run.decisions, b.run.decisions,
            "same seed + same faults => the same schedule, bit for bit"
        );
        assert_eq!(
            format!("{:?}", a.history),
            format!("{:?}", b.history),
            "and the same recorded history"
        );
    }
}

// ---------------------------------------------------------------------
// Sharded store campaigns (`waitfree-store`): histories recorded at the
// *store API* granularity against the flat-map [`StoreModel`]. Each
// multi-key op internally spans several shard logs (prepare/resolve in
// canonical order) and each snapshot decides a marker per shard, so a
// torn multi-op or an inconsistent cut shows up as a non-linearizable
// whole-store history — not just as a bespoke assertion.
// ---------------------------------------------------------------------

fn store_mixed_body(rec: HistoryRecorder<StoreModel<u64, i64, Bump>>) {
    let store: ShardedStore<u64, i64, Bump> = ShardedStore::new(&StoreConfig {
        shards: 4,
        ops_per_handle: 64,
        ..StoreConfig::default()
    });
    let workers: Vec<_> = (0..2usize)
        .map(|t| {
            let rec = rec.clone();
            let store = store.clone();
            vthread::spawn(move || {
                let mut h = store.handle();
                let pid = Pid(t);
                if t == 0 {
                    rec.record(pid, StoreOp::Put(1, 10), || {
                        StoreResp::Prev(h.put(1, 10))
                    });
                    let writes: BTreeMap<u64, Option<i64>> =
                        [(1, Some(11)), (2, Some(22))].into_iter().collect();
                    rec.record(pid, StoreOp::MultiPut(writes.clone()), || {
                        h.multi_put(writes.clone());
                        StoreResp::Done(true)
                    });
                    rec.record(pid, StoreOp::Snapshot, || {
                        StoreResp::Snap(h.snapshot().map)
                    });
                    rec.record(pid, StoreOp::Get(2), || StoreResp::Value(h.get(&2)));
                    // The decided read path stays campaigned alongside
                    // the log-free one.
                    rec.record(pid, StoreOp::Get(3), || {
                        StoreResp::Value(h.get_decided(&3))
                    });
                } else {
                    rec.record(
                        pid,
                        StoreOp::Cas { key: 2, expect: None, new: Some(20) },
                        || {
                            let (ok, prev) = h.cas(2, None, Some(20));
                            StoreResp::Cas { ok, prev }
                        },
                    );
                    let expects: BTreeMap<u64, Option<i64>> =
                        [(1, Some(10))].into_iter().collect();
                    let writes: BTreeMap<u64, Option<i64>> =
                        [(2, Some(-2)), (3, Some(33))].into_iter().collect();
                    rec.record(
                        pid,
                        StoreOp::MultiCas { expects: expects.clone(), writes: writes.clone() },
                        || {
                            StoreResp::Done(
                                h.multi_cas(expects.clone(), writes.clone()),
                            )
                        },
                    );
                    rec.record(pid, StoreOp::Update(3, Bump(5)), || {
                        StoreResp::Prev(h.fetch_update(3, Bump(5)))
                    });
                    // A log-free read racing the other thread's
                    // multi_put on key 1: the reader may observe the
                    // lock at its frontier and help.
                    rec.record(pid, StoreOp::Get(1), || StoreResp::Value(h.get(&1)));
                    rec.record(pid, StoreOp::Snapshot, || {
                        StoreResp::Snap(h.snapshot().map)
                    });
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

/// Acceptance: mixed single-key, multi-key, and snapshot traffic over a
/// 4-shard store linearizes against the atomic flat-map model under
/// both strategy families (1000 seeds each). The two threads' multi-ops
/// overlap on keys 1–3, so helping (one thread completing the other's
/// prepared multi) is on the explored paths — and both read paths are
/// in the mix: the log-free `get` (each thread reads a key the *other*
/// thread multi-puts, so frontier-observed locks and read-side helping
/// are explored) and the decided `get_decided`.
#[test]
fn sharded_store_mixed_ops_linearize() {
    sweep("4-shard store", &StoreModel::new(), store_mixed_body);
}

/// Acceptance: under 1000 random-walk schedules with a writer
/// multi-putting the *same* round number to keys 1, 2 and 3 (routed to
/// different shards), every concurrently-taken snapshot sees the three
/// keys equal — zero torn multi-ops in any cut — and every schedule's
/// trace passes the happens-before audit (the snapshot protocol's
/// orderings justify all plain loads on their own).
#[test]
fn store_snapshots_are_never_torn_and_hb_clean() {
    let mut snaps_total = 0usize;
    for seed in 0..SEEDS {
        let snaps: Arc<Mutex<Vec<BTreeMap<u64, i64>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&snaps);
        let res = run(
            waitfree::sched::RandomWalk::new(seed),
            RunOptions::default(),
            move || {
                let store: ShardedStore<u64, i64> = ShardedStore::new(&StoreConfig {
                    shards: 4,
                    ops_per_handle: 64,
                    ..StoreConfig::default()
                });
                let writer = {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        for round in 1..=2i64 {
                            h.multi_put([
                                (1, Some(round)),
                                (2, Some(round)),
                                (3, Some(round)),
                            ]);
                        }
                        h.retire();
                    })
                };
                let snapper = {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        for _ in 0..2 {
                            sink.lock().unwrap().push(h.snapshot().map);
                        }
                        h.retire();
                    })
                };
                writer.join().unwrap();
                snapper.join().unwrap();
            },
        );
        assert!(res.error.is_none(), "seed {seed}: {:?}", res.error);
        let hb = waitfree::sched::hb_check(&res.trace);
        assert!(
            hb.is_clean(),
            "seed {seed}: snapshot orderings too weak \
             ({} of {} reads unjustified): {}",
            hb.violations.len(),
            hb.reads_checked,
            hb.violations[0]
        );
        assert!(hb.reads_checked > 0, "seed {seed}: no loads judged");
        for snap in snaps.lock().unwrap().iter() {
            let vals: Vec<Option<i64>> =
                [1u64, 2, 3].iter().map(|k| snap.get(k).copied()).collect();
            assert!(
                vals.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: torn snapshot — keys 1..3 diverge: {snap:?}"
            );
            snaps_total += 1;
        }
    }
    assert!(snaps_total >= SEEDS as usize, "campaign took too few snapshots");
}

/// Acceptance (review regression): one thread reading both keys of a
/// concurrently committing two-shard `multi_put` through the *decided*
/// read path must never observe it half-applied. The writer multi-puts
/// ascending round numbers to two keys on different shards; the reader
/// reads the key on the *lower* shard first. Resolves land in
/// ascending shard order, so a read that ignored multi-op locks could
/// read the new round off the low shard after its resolve and the old
/// round off the high shard before its resolve — a strictly decreasing
/// pair of sequential reads, which no linearization of the atomic
/// flat-map model allows. Reads helping past the lock (like every
/// mutator) closes exactly this window. See
/// `store_local_get_never_observes_a_half_applied_multi` for the same
/// schedule shape on the log-free path.
#[test]
fn store_get_never_observes_a_half_applied_multi() {
    for seed in 0..SEEDS {
        let res = run(
            waitfree::sched::RandomWalk::new(seed),
            RunOptions::default(),
            move || {
                let store: ShardedStore<u64, i64> = ShardedStore::new(&StoreConfig {
                    shards: 4,
                    ops_per_handle: 64,
                    ..StoreConfig::default()
                });
                // Two keys on distinct shards, ordered by shard: the
                // vulnerable read order is lower-shard key first.
                let lo = 0u64;
                let hi = (1..)
                    .find(|k| store.shard_of(k) != store.shard_of(&lo))
                    .expect("4 shards hold more than one shard's worth of keys");
                let (lo, hi) = if store.shard_of(&lo) < store.shard_of(&hi) {
                    (lo, hi)
                } else {
                    (hi, lo)
                };
                let writer = {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        for round in 1..=2i64 {
                            h.multi_put([(lo, Some(round)), (hi, Some(round))]);
                        }
                        h.retire();
                    })
                };
                let reader = {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        for _ in 0..2 {
                            let a = h.get_decided(&lo).unwrap_or(0);
                            let b = h.get_decided(&hi).unwrap_or(0);
                            assert!(
                                b >= a,
                                "seed {seed}: half-applied multi observed — \
                                 key {lo} (low shard) read round {a}, then \
                                 key {hi} (high shard) read round {b}"
                            );
                        }
                        h.retire();
                    })
                };
                writer.join().unwrap();
                reader.join().unwrap();
            },
        );
        assert!(res.error.is_none(), "seed {seed}: {:?}", res.error);
    }
}

/// Acceptance: the PR 8 half-applied-multi regression, replayed against
/// the **log-free** read path. The schedule shape is identical to
/// `store_get_never_observes_a_half_applied_multi`, but the reader uses
/// the replica fast path (`get`, and `multi_get` on alternate rounds) —
/// no log entry is decided for any read, so the only thing standing
/// between the reader and a torn observation is the frontier argument
/// of DESIGN §14: a frontier that shows the low shard's resolve must
/// show the high shard's prepare, whose lock blocks the read into
/// helping. Every schedule's trace additionally passes the
/// happens-before audit, so the Acquire frontier load's justification
/// is machine-checked, not just argued.
#[test]
fn store_local_get_never_observes_a_half_applied_multi() {
    for seed in 0..SEEDS {
        let res = run(
            waitfree::sched::RandomWalk::new(seed),
            RunOptions::default(),
            move || {
                let store: ShardedStore<u64, i64> = ShardedStore::new(&StoreConfig {
                    shards: 4,
                    ops_per_handle: 64,
                    ..StoreConfig::default()
                });
                let lo = 0u64;
                let hi = (1..)
                    .find(|k| store.shard_of(k) != store.shard_of(&lo))
                    .expect("4 shards hold more than one shard's worth of keys");
                let (lo, hi) = if store.shard_of(&lo) < store.shard_of(&hi) {
                    (lo, hi)
                } else {
                    (hi, lo)
                };
                let writer = {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        for round in 1..=2i64 {
                            h.multi_put([(lo, Some(round)), (hi, Some(round))]);
                        }
                        h.retire();
                    })
                };
                let reader = {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        for i in 0..2 {
                            let (a, b) = if i == 0 {
                                (h.get(&lo).unwrap_or(0), h.get(&hi).unwrap_or(0))
                            } else {
                                let vs = h.multi_get(&[lo, hi]);
                                (vs[0].unwrap_or(0), vs[1].unwrap_or(0))
                            };
                            assert!(
                                b >= a,
                                "seed {seed}: half-applied multi observed on the \
                                 log-free path — key {lo} (low shard) read round \
                                 {a}, then key {hi} (high shard) read round {b}"
                            );
                        }
                        h.retire();
                    })
                };
                writer.join().unwrap();
                reader.join().unwrap();
            },
        );
        assert!(res.error.is_none(), "seed {seed}: {:?}", res.error);
        let hb = waitfree::sched::hb_check(&res.trace);
        assert!(
            hb.is_clean(),
            "seed {seed}: local-read orderings too weak \
             ({} of {} reads unjustified): {}",
            hb.violations.len(),
            hb.reads_checked,
            hb.violations[0]
        );
    }
}
