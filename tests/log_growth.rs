//! Growth tests for the segmented universal-object log: the pointer-CAS
//! path allocates [`SEGMENT_SIZE`]-position segments lazily and installs
//! them by CAS, so an object built with `WfUniversal::new` never runs
//! out of positions. These tests push well past one segment under
//! contention and assert
//!
//! 1. segment count grew (and stayed within the 2·n·ops duplication
//!    bound, so helping never leaks whole segments),
//! 2. no entry was lost or duplicated across a boundary (the
//!    fetch-and-add ticket-uniqueness witness), and
//! 3. `refresh()` replays correctly across segment boundaries, so a
//!    handle that sat idle through several segments of history still
//!    converges.
//!
//! A capped configuration (`with_capacity`) must still surface
//! `UniversalError::LogFull` — including a cap that lands beyond the
//! first segment, so the cap check and the growth path compose.
//!
//! With checkpointed truncation enabled, growth is no longer monotone:
//! installed segments keep counting up, but *live* segments (installed −
//! reclaimed) must drop back behind every checkpoint — bounded by the
//! frontier spread of the active handles, not by total ops.

use waitfree::sched::thread;

use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sync::universal::{UniversalError, WfUniversal, SEGMENT_SIZE};

#[test]
fn contended_log_grows_across_segments_without_losing_tickets() {
    let threads = 4;
    // 4 threads × per ops ≥ 10 segments even before helping duplicates.
    let per = (10 * SEGMENT_SIZE) / 4 + 8;
    let handles = WfUniversal::new(Counter::new(0), threads, per);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                let tickets: Vec<i64> = (0..per)
                    .map(|_| match h.invoke(CounterOp::FetchAndAdd(1)) {
                        CounterResp::Value(v) => v,
                        other => panic!("unexpected {other:?}"),
                    })
                    .collect();
                (tickets, h.segments())
            })
        })
        .collect();

    let mut all = Vec::new();
    let mut segments = 0;
    for j in joins {
        let (tickets, segs) = j.join().unwrap();
        all.extend(tickets);
        segments = segments.max(segs);
    }

    // (2) FAA ticket uniqueness: every old value observed exactly once —
    // entries crossing segment boundaries were neither lost nor replayed
    // twice.
    all.sort_unstable();
    let expect: Vec<i64> = (0..(threads * per) as i64).collect();
    assert_eq!(all, expect, "each ticket taken exactly once across segments");

    // (1) The log actually grew, and within the duplication bound: at
    // most 2·n·ops positions are ever decided (each entry appears at
    // most twice), so the installed segments must fit that many
    // positions plus one partial segment.
    let max_positions = 2 * threads * per;
    assert!(segments > 1, "workload must span multiple segments");
    assert!(
        (segments - 1) * SEGMENT_SIZE <= max_positions,
        "{segments} segments exceeds the 2·n·ops position bound"
    );
}

#[test]
fn refresh_replays_across_segment_boundaries() {
    let ops = 3 * SEGMENT_SIZE + 7;
    let mut handles = WfUniversal::new(Counter::new(0), 2, ops);
    let mut idle = handles.pop().unwrap();
    let mut busy = handles.pop().unwrap();
    for i in 0..ops {
        busy.invoke(CounterOp::Add(i as i64));
    }
    // The idle handle has replayed nothing; refresh must walk the whole
    // chain, crossing every boundary, and converge on the busy replica.
    assert_eq!(idle.replayed(), 0);
    assert_eq!(idle.refresh(), busy.refresh(), "replicas converge across segments");
    assert!(idle.replayed() >= ops, "idle handle replayed the full log");
    assert!(busy.segments() >= 3, "history spanned segments: {}", busy.segments());
}

#[test]
fn log_full_cap_is_enforced_beyond_the_first_segment() {
    // A cap past one segment: growth happens, then the cap bites.
    let cap = SEGMENT_SIZE + 6;
    let mut handles = WfUniversal::with_capacity(Counter::new(0), 1, 2 * cap, cap);
    let mut h = handles.remove(0);
    for _ in 0..cap {
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
    }
    match h.try_invoke(CounterOp::Add(1)) {
        Err(UniversalError::LogFull { position, capacity }) => {
            assert_eq!(position, cap);
            assert_eq!(capacity, cap);
        }
        other => panic!("expected LogFull, got {other:?}"),
    }
    assert_eq!(h.segments(), 2, "the capped log still grew past segment one");
}

#[test]
fn live_segments_drop_back_after_truncation() {
    // The checkpointed path's memory bound: *live* segments (installed −
    // reclaimed) are governed by the frontier spread — how far apart the
    // handles' replay cursors are — not by total ops. Run one handle far
    // past many segments: installed keeps growing, live drops back.
    let every = SEGMENT_SIZE / 2;
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 20 * SEGMENT_SIZE, every);
    let mut h = obj.register();
    let mut live_high = 0;
    for _ in 0..8 * SEGMENT_SIZE {
        h.invoke(CounterOp::Add(1));
        live_high = live_high.max(obj.live_segments());
    }
    assert!(h.segments() >= 8, "history spanned many segments: {}", h.segments());
    assert!(
        obj.reclaimed_segments() >= h.segments() - 3,
        "all but the frontier neighbourhood was reclaimed ({} of {})",
        obj.reclaimed_segments(),
        h.segments()
    );
    // A single handle's frontier spread is at most one cadence plus the
    // current partial segment: live never exceeded a small constant.
    assert!(live_high <= 3, "live segments stayed bounded, peaked at {live_high}");
    assert!(obj.live_segments() <= 2, "live segments dropped back: {}", obj.live_segments());

    // An idle second handle is a frontier anchor: its spread — not total
    // ops — is what bounds memory. Registering it pins the current tail
    // only (it adopts the newest checkpoint), so growth stays bounded by
    // the *two* handles' spread.
    let mut idle = obj.register();
    for _ in 0..4 * SEGMENT_SIZE {
        h.invoke(CounterOp::Add(1));
    }
    assert!(
        obj.live_segments() <= 2 + 4,
        "an idle-but-active frontier bounds live segments by its spread: {}",
        obj.live_segments()
    );
    // Once the idle handle catches up, the spread collapses again.
    // (Reclamation fires on checkpoint decides, not on frontier
    // publishes, so trigger a pass explicitly after the catch-up.)
    idle.refresh();
    obj.reclaim();
    assert!(
        obj.live_segments() <= 3,
        "catch-up collapses the spread: {} live",
        obj.live_segments()
    );
    assert_eq!(
        h.invoke(CounterOp::Get),
        CounterResp::Value((12 * SEGMENT_SIZE) as i64),
        "truncation is invisible to the abstract state"
    );
}
