//! Integration: the three fetch-and-cons/universal implementations agree
//! with each other and with the sequential specification.

use waitfree::core::universal::consensus_cons::{verify_history, ConsensusFetchAndCons};
use waitfree::core::universal::log::{LogFrontEnd, LogItem, LogUniversal};
use waitfree::core::universal::swap_cons::SwapFetchAndCons;
use waitfree::explorer::impl_sim::{run_random, run_schedule};
use waitfree::model::{linearize, ObjectSpec, PendingPolicy, Pid, Val};
use waitfree::objects::list::ConsList;
use waitfree::objects::queue::{FifoQueue, QueueOp};
use waitfree::sync::universal::WfUniversal;

/// Sequential fetch-and-cons spec over plain values.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
struct FacSpec(Vec<Val>);

impl ObjectSpec for FacSpec {
    type Op = Val;
    type Resp = Vec<Val>;
    fn apply(&mut self, _pid: Pid, x: &Val) -> Vec<Val> {
        let old = self.0.clone();
        self.0.insert(0, *x);
        old
    }
}

#[test]
fn swap_cons_and_consensus_cons_agree_sequentially() {
    // Drive both fetch-and-cons implementations through the same strictly
    // sequential workload; their responses must coincide with the spec.
    let items: Vec<Val> = vec![5, 9, 2, 7];

    // Reference.
    let mut spec = FacSpec::default();
    let expected: Vec<Vec<Val>> = items.iter().map(|x| spec.apply(Pid(0), x)).collect();

    // Swap-based (one process, sequential).
    let (fe, arena) = SwapFetchAndCons::setup(1, items.len());
    let run = run_schedule(&fe, arena, std::slice::from_ref(&items), &vec![0usize; 400]);
    assert!(run.complete);
    let got: Vec<Vec<Val>> = run
        .history
        .ops()
        .iter()
        .map(|o| o.resp.clone().expect("complete"))
        .collect();
    assert_eq!(got, expected, "swap-based fetch-and-cons");

    // Consensus-based (one process, sequential); items carry (owner, seq,
    // payload) tags, so project the payloads.
    let (fe, rep) = ConsensusFetchAndCons::setup(1);
    let run = run_schedule(&fe, rep, std::slice::from_ref(&items), &vec![0usize; 800]);
    assert!(run.complete);
    let got: Vec<Vec<Val>> = run
        .history
        .ops()
        .iter()
        .map(|o| {
            o.resp
                .clone()
                .expect("complete")
                .into_iter()
                .map(|it| it.payload)
                .collect()
        })
        .collect();
    assert_eq!(got, expected, "consensus-based fetch-and-cons");
}

#[test]
fn simulated_and_hardware_universal_queue_agree() {
    // The same mixed workload through (a) the §4.1 log construction in
    // the simulator and (b) the hardware universal object, single
    // threaded — byte-for-byte identical responses.
    let script = [
        QueueOp::Enq(4),
        QueueOp::Enq(5),
        QueueOp::Deq,
        QueueOp::Deq,
        QueueOp::Deq,
        QueueOp::Enq(6),
        QueueOp::Deq,
    ];

    let mut sim = LogUniversal::new(FifoQueue::new(), true);
    let mut hw = WfUniversal::new(FifoQueue::new(), 1, script.len()).remove(0);
    let mut spec = FifoQueue::new();
    for op in &script {
        let expected = spec.apply(Pid(0), op);
        assert_eq!(sim.invoke(Pid(0), op.clone()), expected, "{op:?}");
        assert_eq!(hw.invoke(op.clone()), expected, "{op:?}");
    }
}

#[test]
fn log_front_end_and_consensus_cons_both_linearize_concurrently() {
    // Concurrent runs of both universal paths, checked by their
    // respective criteria.
    let fe = LogFrontEnd { initial: FifoQueue::new() };
    let workloads = vec![
        vec![QueueOp::Enq(1), QueueOp::Deq],
        vec![QueueOp::Enq(2), QueueOp::Deq],
        vec![QueueOp::Enq(3), QueueOp::Deq],
    ];
    for seed in 0..50 {
        let run = run_random(&fe, ConsList::<LogItem<QueueOp>>::new(), &workloads, seed, 300);
        let report = linearize(&run.history, &FifoQueue::new(), PendingPolicy::MayTakeEffect);
        assert!(report.outcome.is_ok(), "log front-end, seed {seed}");
    }

    let (fe, rep) = ConsensusFetchAndCons::setup(3);
    let workloads: Vec<Vec<Val>> = (0..3).map(|p| vec![p * 10, p * 10 + 1]).collect();
    for seed in 0..50 {
        let run = run_random(&fe, rep.clone(), &workloads, seed, 500);
        assert!(verify_history(&run.history), "consensus cons, seed {seed}");
    }
}

/// Satellite of the `sched` tier: under *identical* operation-level
/// schedules, the pointer-CAS universal object (in both decide modes —
/// batch combining and per-op) and the consensus-cell rendering must
/// decide the same flattened log and return the same responses, seed
/// for seed. [`OpRandom`](waitfree::sched::OpRandom) never preempts at
/// an atomic point and consumes no randomness there, so its decision
/// sequence depends only on the operation structure (spawn/yield/block/
/// exit), which all three implementations share — the schedules are
/// comparable even though the hot paths execute different numbers of
/// atomic instructions. (`decided_log` flattens batch entries, so the
/// comparison is shape-independent by construction; see
/// DESIGN.md, "Batch combining".)
#[cfg(feature = "sched")]
mod sched_equivalence {
    use std::sync::{Arc, Mutex};

    use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree::sched::thread as vthread;
    use waitfree::sched::{run, OpRandom, RunOptions};
    use waitfree::sync::universal::{WfHandle, WfUniversal};
    use waitfree::sync::universal_cell::{CellHandle, CellUniversal};

    const THREADS: usize = 2;
    const OPS: usize = 3;

    /// The common surface of the two universal-object handles.
    trait Handle: Send + 'static {
        fn tid(&self) -> usize;
        fn invoke(&mut self, op: CounterOp) -> CounterResp;
        fn decided_log(&self) -> Vec<(usize, usize)>;
    }

    impl Handle for WfHandle<Counter> {
        fn tid(&self) -> usize {
            WfHandle::tid(self)
        }
        fn invoke(&mut self, op: CounterOp) -> CounterResp {
            WfHandle::invoke(self, op)
        }
        fn decided_log(&self) -> Vec<(usize, usize)> {
            WfHandle::decided_log(self)
        }
    }

    impl Handle for CellHandle<Counter> {
        fn tid(&self) -> usize {
            CellHandle::tid(self)
        }
        fn invoke(&mut self, op: CounterOp) -> CounterResp {
            CellHandle::invoke(self, op)
        }
        fn decided_log(&self) -> Vec<(usize, usize)> {
            CellHandle::decided_log(self)
        }
    }

    /// Per-tid responses plus the decided log of one scheduled run.
    type Out = (Vec<(usize, Vec<CounterResp>)>, Vec<(usize, usize)>);

    /// One scheduled run: every handle's thread interleaves `OPS`
    /// fetch-and-adds (with a yield after each, the operation-level
    /// schedule points). Returns per-tid responses and the decided log.
    fn drive<H: Handle>(handles: Vec<H>, seed: u64) -> Out {
        let out: Arc<Mutex<Option<Out>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&out);
        let res = run(OpRandom::new(seed), RunOptions::default(), move || {
            let workers: Vec<_> = handles
                .into_iter()
                .map(|mut h| {
                    vthread::spawn(move || {
                        let tid = h.tid();
                        let resps: Vec<CounterResp> = (0..OPS)
                            .map(|i| {
                                let op = CounterOp::FetchAndAdd((100 * tid + i + 1) as i64);
                                let r = h.invoke(op);
                                vthread::yield_now();
                                r
                            })
                            .collect();
                        (tid, resps, h)
                    })
                })
                .collect();
            let mut results = Vec::new();
            let mut log = None;
            for w in workers {
                let (tid, resps, h) = w.join().unwrap();
                log = Some(h.decided_log());
                results.push((tid, resps));
            }
            results.sort_by_key(|(tid, _)| *tid);
            *sink.lock().unwrap() = Some((results, log.expect("at least one worker")));
        });
        assert!(res.error.is_none(), "{:?}", res.error);
        let r = out.lock().unwrap().take().unwrap();
        r
    }

    #[test]
    fn cell_and_pointer_universal_agree_under_identical_schedules() {
        for seed in 0..64 {
            let batched = drive(WfUniversal::new(Counter::new(0), THREADS, 16), seed);
            let per_op = drive(WfUniversal::new_per_op(Counter::new(0), THREADS, 16), seed);
            let cell = drive(CellUniversal::new(Counter::new(0), THREADS, 16), seed);
            assert_eq!(batched.0, cell.0, "batched responses diverged at seed {seed}");
            assert_eq!(per_op.0, cell.0, "per-op responses diverged at seed {seed}");
            assert_eq!(batched.1, cell.1, "batched decided log diverged at seed {seed}");
            assert_eq!(per_op.1, cell.1, "per-op decided log diverged at seed {seed}");
            assert_eq!(cell.1.len(), THREADS * OPS, "all ops decided at seed {seed}");
        }
    }

    /// Checkpointed-vs-unbounded equivalence under identical schedules:
    /// an aggressive cadence (a checkpoint attempt every 2 positions)
    /// interleaves checkpoint decides among the op decides, but the
    /// responses must match the unbounded object's seed for seed, and
    /// the flattened decided log — checkpoints contribute no members —
    /// must carry the same ops in the same order. (At this scale no
    /// segment falls behind the reclaim bound, so the retained prefix
    /// is the whole log and the comparison is exact; truncation of
    /// *state* is exercised, truncation of *memory* is covered by
    /// `tests/log_growth.rs` and the soak test.)
    #[test]
    fn checkpointed_and_unbounded_agree_under_identical_schedules() {
        for seed in 0..64 {
            let unbounded = drive(WfUniversal::new(Counter::new(0), THREADS, 16), seed);
            let cp =
                drive(WfUniversal::new_checkpointed(Counter::new(0), THREADS, 16, 2), seed);
            assert_eq!(cp.0, unbounded.0, "checkpointed responses diverged at seed {seed}");
            assert_eq!(cp.1, unbounded.1, "checkpointed op order diverged at seed {seed}");
        }
    }
}

#[test]
fn dynamic_registration_is_equivalent_to_static_creation() {
    // The same script through a statically-built object and through a
    // churn of dynamically registered handles (a fresh registration every
    // two operations, each retiring behind itself): responses must agree
    // op for op, so slot reuse is invisible to the sequential semantics.
    let script = [
        QueueOp::Enq(4),
        QueueOp::Enq(5),
        QueueOp::Deq,
        QueueOp::Deq,
        QueueOp::Deq,
        QueueOp::Enq(6),
        QueueOp::Enq(7),
        QueueOp::Deq,
    ];
    let mut stat = WfUniversal::new(FifoQueue::new(), 1, script.len()).remove(0);
    let dynamic = WfUniversal::new_dynamic(FifoQueue::new(), 2);
    for chunk in script.chunks(2) {
        let mut h = dynamic.register();
        for op in chunk {
            assert_eq!(h.invoke(op.clone()), stat.invoke(op.clone()), "{op:?}");
        }
        h.retire();
    }
    assert_eq!(dynamic.registry_slots(), 1);
    assert_eq!(dynamic.total_arrivals(), script.len() / 2);
}

#[test]
fn checkpointed_churn_is_equivalent_to_unbounded() {
    // Registrant churn across *real* truncation: each short-lived handle
    // adopts the newest checkpoint (the origin segments are gone by
    // mid-run) and must still observe exactly the state an unbounded
    // object accumulates from the same script.
    use waitfree::objects::counter::{Counter, CounterOp};
    use waitfree::sync::universal::SEGMENT_SIZE;

    let total = 6 * SEGMENT_SIZE;
    let chunk = SEGMENT_SIZE / 2;
    let cp = WfUniversal::new_dynamic_checkpointed(Counter::new(0), chunk + 1, SEGMENT_SIZE / 2);
    let un = WfUniversal::new_dynamic(Counter::new(0), chunk + 1);
    for start in (0..total).step_by(chunk) {
        let mut hc = cp.register();
        let mut hu = un.register();
        for i in start..start + chunk {
            assert_eq!(
                hc.invoke(CounterOp::FetchAndAdd(1)),
                hu.invoke(CounterOp::FetchAndAdd(1)),
                "op {i}"
            );
        }
        hc.retire();
        hu.retire();
    }
    assert!(
        cp.reclaimed_segments() >= 3,
        "churn script truncated for real: {} segments reclaimed",
        cp.reclaimed_segments()
    );
    assert!(
        cp.live_segments() < un.live_segments(),
        "checkpointed object retains less than unbounded ({} vs {})",
        cp.live_segments(),
        un.live_segments()
    );
}

#[test]
fn hardware_universal_object_survives_thread_churn() {
    // Handles dropped early (threads "crash" after a few ops): the
    // remaining threads keep completing operations.
    let threads = 4;
    let per = 200;
    let handles = WfUniversal::new(FifoQueue::new(), threads, per + 4);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            waitfree::sched::thread::spawn(move || {
                let quit_early = h.tid() % 2 == 0;
                let ops = if quit_early { 3 } else { per };
                for i in 0..ops {
                    h.invoke(QueueOp::Enq(i as Val));
                }
                // Early-quitters just return: an undetected halt.
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    // A fresh count from a surviving handle's perspective: the object is
    // still fully operational.
    let mut check = WfUniversal::new(FifoQueue::new(), 1, 4).remove(0);
    check.invoke(QueueOp::Enq(1));
    assert_eq!(check.invoke(QueueOp::Deq), waitfree::objects::queue::QueueResp::Item(1));
}

// ---------------------------------------------------------------------------
// Sharded-store equivalence (`waitfree-store`): partitioning the key
// space over N consensus logs must be invisible to sequential
// semantics — a 4-shard store, a 1-shard store ("single log"), and the
// flat-map reference model must agree response for response.
// ---------------------------------------------------------------------------

#[test]
fn sharded_store_matches_flat_map_reference_sequentially() {
    use waitfree::model::{ObjectSpec, Pid};
    use waitfree::store::{
        Bump, ShardedStore, StoreConfig, StoreModel, StoreOp, StoreResp,
    };

    let mut model: StoreModel<u64, i64, Bump> = StoreModel::new();
    let mut stores: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&shards| {
            let st: ShardedStore<u64, i64, Bump> =
                ShardedStore::new(&StoreConfig { shards, ..StoreConfig::default() });
            let h = st.handle();
            (shards, st, h)
        })
        .collect();

    let script: Vec<StoreOp<u64, i64, Bump>> = vec![
        StoreOp::Put(1, 10),
        StoreOp::Put(2, 20),
        StoreOp::Get(1),
        StoreOp::Cas { key: 2, expect: Some(20), new: Some(21) },
        StoreOp::Cas { key: 2, expect: Some(20), new: Some(99) },
        StoreOp::Update(3, Bump(7)),
        StoreOp::MultiPut([(4, Some(40)), (5, Some(50)), (1, None)].into_iter().collect()),
        StoreOp::Snapshot,
        StoreOp::MultiCas {
            expects: [(4, Some(40)), (5, Some(50))].into_iter().collect(),
            writes: [(4, Some(41)), (6, Some(60))].into_iter().collect(),
        },
        StoreOp::MultiCas {
            expects: [(4, Some(40))].into_iter().collect(),
            writes: [(4, Some(-1))].into_iter().collect(),
        },
        StoreOp::Remove(2),
        StoreOp::Update(3, Bump(-7)),
        StoreOp::Snapshot,
    ];

    for (i, op) in script.iter().enumerate() {
        let expected = model.apply(Pid(0), op);
        for (shards, _st, h) in &mut stores {
            let got = match op.clone() {
                StoreOp::Get(k) => {
                    // The three read surfaces must coincide sequentially:
                    // log-free `get`, the decided-read witness, and the
                    // batched form.
                    let local = h.get(&k);
                    assert_eq!(h.get_decided(&k), local, "step {i}: decided get diverged");
                    assert_eq!(h.multi_get(&[k]), vec![local], "step {i}: multi_get diverged");
                    StoreResp::Value(local)
                }
                StoreOp::Put(k, v) => StoreResp::Prev(h.put(k, v)),
                StoreOp::Remove(k) => StoreResp::Prev(h.remove(&k)),
                StoreOp::Cas { key, expect, new } => {
                    let (ok, prev) = h.cas(key, expect, new);
                    StoreResp::Cas { ok, prev }
                }
                StoreOp::Update(k, m) => StoreResp::Prev(h.fetch_update(k, m)),
                StoreOp::MultiPut(writes) => {
                    h.multi_put(writes);
                    StoreResp::Done(true)
                }
                StoreOp::MultiCas { expects, writes } => {
                    StoreResp::Done(h.multi_cas(expects, writes))
                }
                StoreOp::Snapshot => StoreResp::Snap(h.snapshot().map),
            };
            assert_eq!(got, expected, "step {i} ({op:?}) diverged at {shards} shard(s)");
        }
    }
}

/// Sharded(4) vs single-log(1) under *identical op-granularity
/// schedules* (`OpRandom` preempts at explicit schedule points, never
/// inside an op): the partition must not change any logical response
/// or any snapshot, seed for seed.
#[cfg(feature = "sched")]
mod store_equivalence {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    use waitfree::sched::thread as vthread;
    use waitfree::sched::{run, OpRandom, RunOptions};
    use waitfree::store::{Bump, ShardedStore, StoreConfig};

    /// Version-free logical outcome of one store op.
    #[derive(Clone, PartialEq, Eq, Debug)]
    enum R {
        Prev(Option<i64>),
        Cas(bool, Option<i64>),
        Done(bool),
        Snap(BTreeMap<u64, i64>),
    }

    type Out = Vec<(usize, Vec<R>)>;

    fn drive(shards: usize, seed: u64) -> Out {
        let out: Arc<Mutex<Option<Out>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&out);
        let res = run(OpRandom::new(seed), RunOptions::default(), move || {
            let store: ShardedStore<u64, i64, Bump> = ShardedStore::new(&StoreConfig {
                shards,
                ops_per_handle: 64,
                ..StoreConfig::default()
            });
            let workers: Vec<_> = (0..2usize)
                .map(|t| {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        let mut resps = Vec::new();
                        let step = |r: R| {
                            vthread::yield_now();
                            r
                        };
                        if t == 0 {
                            resps.push(step(R::Prev(h.put(1, 10))));
                            resps.push(step(R::Done({
                                h.multi_put([(1, Some(11)), (4, Some(44))]);
                                true
                            })));
                            resps.push(step(R::Prev(h.fetch_update(2, Bump(5)))));
                            resps.push(step(R::Snap(h.snapshot().map)));
                            resps.push(step(R::Prev(h.get(&4))));
                        } else {
                            let (ok, prev) = h.cas(2, None, Some(20));
                            resps.push(step(R::Cas(ok, prev)));
                            resps.push(step(R::Done(h.multi_cas(
                                [(1, Some(10))],
                                [(2, Some(22)), (5, Some(55))],
                            ))));
                            resps.push(step(R::Prev(h.remove(&4))));
                            resps.push(step(R::Snap(h.snapshot().map)));
                        }
                        (t, resps)
                    })
                })
                .collect();
            let mut results: Out = workers.into_iter().map(|w| w.join().unwrap()).collect();
            results.sort_by_key(|(t, _)| *t);
            *sink.lock().unwrap() = Some(results);
        });
        assert!(res.error.is_none(), "shards {shards} seed {seed}: {:?}", res.error);
        let r = out.lock().unwrap().take().unwrap();
        r
    }

    #[test]
    fn sharded_and_single_log_agree_under_identical_schedules() {
        for seed in 0..64 {
            let sharded = drive(4, seed);
            let single = drive(1, seed);
            assert_eq!(sharded, single, "logical outcomes diverged at seed {seed}");
        }
    }

    /// One scheduled run of a read-heavy mixed workload whose reads go
    /// through either the log-free replica path (`get`/`multi_get`) or
    /// the decided-read witness (`get_decided`), selected by `local`.
    /// Both variants perform the same operations between the same yield
    /// points (the paired reads share a single schedule step), so
    /// `OpRandom` — which never preempts inside an op — produces the
    /// identical op-granularity interleaving for both.
    fn drive_reads(local: bool, seed: u64) -> Out {
        let out: Arc<Mutex<Option<Out>>> = Arc::new(Mutex::new(None));
        let sink = Arc::clone(&out);
        let res = run(OpRandom::new(seed), RunOptions::default(), move || {
            let store: ShardedStore<u64, i64, Bump> = ShardedStore::new(&StoreConfig {
                shards: 4,
                ops_per_handle: 64,
                ..StoreConfig::default()
            });
            let workers: Vec<_> = (0..2usize)
                .map(|t| {
                    let store = store.clone();
                    vthread::spawn(move || {
                        let mut h = store.handle();
                        let mut resps = Vec::new();
                        let step = |r: R| {
                            vthread::yield_now();
                            r
                        };
                        if t == 0 {
                            resps.push(step(R::Prev(h.put(1, 10))));
                            resps.push(step(R::Done({
                                h.multi_put([(1, Some(11)), (4, Some(44))]);
                                true
                            })));
                            // Paired read: one schedule step for both
                            // keys on either path, so the yield
                            // structure is identical across variants.
                            let (a, b) = if local {
                                let vs = h.multi_get(&[1, 4]);
                                (vs[0], vs[1])
                            } else {
                                (h.get_decided(&1), h.get_decided(&4))
                            };
                            resps.push(R::Prev(a));
                            resps.push(step(R::Prev(b)));
                            resps.push(step(R::Prev(h.fetch_update(2, Bump(5)))));
                        } else {
                            let (ok, prev) = h.cas(2, None, Some(20));
                            resps.push(step(R::Cas(ok, prev)));
                            let r1 = if local { h.get(&1) } else { h.get_decided(&1) };
                            resps.push(step(R::Prev(r1)));
                            resps.push(step(R::Done(h.multi_cas(
                                [(1, Some(10))],
                                [(2, Some(22)), (5, Some(55))],
                            ))));
                            let r2 = if local { h.get(&2) } else { h.get_decided(&2) };
                            resps.push(step(R::Prev(r2)));
                            resps.push(step(R::Snap(h.snapshot().map)));
                        }
                        (t, resps)
                    })
                })
                .collect();
            let mut results: Out = workers.into_iter().map(|w| w.join().unwrap()).collect();
            results.sort_by_key(|(t, _)| *t);
            *sink.lock().unwrap() = Some(results);
        });
        assert!(res.error.is_none(), "local {local} seed {seed}: {:?}", res.error);
        let r = out.lock().unwrap().take().unwrap();
        r
    }

    /// Satellite of the log-free read path (DESIGN §14): under
    /// *identical* op-granularity schedules, a local read must return
    /// exactly what a decided read returns — not merely a linearizable
    /// value. At op granularity every completed prior op has published
    /// its frontier hint by the time a read starts, so a local read
    /// that lags (e.g. a missing completion-side `publish_hint`) would
    /// return a stale value here and diverge from the decided witness,
    /// seed for seed.
    #[test]
    fn local_and_decided_reads_agree_under_identical_schedules() {
        for seed in 0..64 {
            let local = drive_reads(true, seed);
            let decided = drive_reads(false, seed);
            assert_eq!(local, decided, "read paths diverged at seed {seed}");
        }
    }
}
