//! Dynamic-membership churn on real threads: clients register, operate,
//! retire, and respawn continuously, and the registry must behave like
//! the infinite-arrival model promises — memory bounded by the *peak
//! number of concurrently active handles*, never by total arrivals, and
//! linearizability preserved across arbitrary slot reuse.
//!
//! The crash storms (feature `failpoints`) additionally kill clients at
//! the membership failpoint sites (`universal::register`,
//! `universal::retire`): a client crashed mid-retirement leaves a
//! retired, quiescent slot that the next registrant reclaims; one
//! crashed before claiming leaves nothing. Either way the object keeps
//! linearizing and the registry stays bounded.

use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sched::thread;
use waitfree::sync::universal::WfUniversal;

#[test]
fn concurrent_churn_is_bounded_by_peak_active_not_arrivals() {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 50;
    let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
    let joins: Vec<_> = (0..WORKERS)
        .map(|_| {
            let obj = obj.clone();
            thread::spawn(move || {
                for _ in 0..ROUNDS {
                    let mut h = obj.register();
                    h.invoke(CounterOp::Add(1));
                    h.retire();
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    assert_eq!(obj.total_arrivals(), WORKERS * ROUNDS);
    assert_eq!(obj.active_handles(), 0, "every registration retired");
    assert!(obj.peak_active() <= WORKERS);
    // The memory bound of the infinite-arrival construction: slots are
    // recycled, so the registry high-water tracks peak concurrent
    // registrations (plus transient claim races), not the 200 arrivals.
    assert!(
        obj.registry_slots() <= 2 * WORKERS,
        "registry grew to {} slots for {} concurrent workers",
        obj.registry_slots(),
        WORKERS
    );
    assert!(
        obj.registry_slots() < obj.total_arrivals() / 10,
        "registry scales with arrivals ({} slots, {} arrivals)",
        obj.registry_slots(),
        obj.total_arrivals()
    );

    let mut probe = obj.register();
    assert_eq!(
        probe.invoke(CounterOp::Get),
        CounterResp::Value((WORKERS * ROUNDS) as i64),
        "no add lost across churn"
    );
}

#[test]
fn respawned_clients_observe_their_predecessors() {
    // Generations: each client increments, retires, and its successor
    // must observe a strictly larger counter — slot reuse preserves the
    // happened-before chain through the log.
    let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
    let mut last = -1i64;
    for _ in 0..40 {
        let mut h = obj.register();
        let seen = match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            other => panic!("unexpected {other:?}"),
        };
        assert!(seen > last, "generation {seen} does not extend {last}");
        last = seen;
        h.retire();
    }
    assert_eq!(obj.registry_slots(), 1, "one generation alive at a time needs one slot");
}

#[cfg(feature = "failpoints")]
mod storms {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use waitfree::sched::atomic::{AtomicUsize, Ordering};
    use waitfree::faults::failpoints::{self, FailpointConfig, FaultAction, Fire};
    use waitfree::faults::harness::{spawn_workers, Outcome};

    /// Register/invoke/retire storm with crashes injected at the
    /// membership sites. Seeds are printed so a failing interleaving can
    /// be replayed by running the same seed.
    fn churn_storm_round(seed: u64) {
        const WORKERS: usize = 4;
        const ROUNDS: usize = 25;
        const MEMBERSHIP_SITES: [&str; 2] = ["universal::register", "universal::retire"];
        println!("churn storm seed {seed}: {WORKERS} workers x {ROUNDS} rounds");

        failpoints::clear();
        failpoints::set_seed(seed);
        failpoints::configure(
            "universal::retire",
            FailpointConfig {
                action: FaultAction::Crash,
                fire: Fire::PerMille(120),
                tid: None,
                budget: Some(2),
            },
        );
        failpoints::configure(
            "universal::register",
            FailpointConfig {
                action: FaultAction::Crash,
                fire: Fire::PerMille(60),
                tid: None,
                budget: Some(1),
            },
        );

        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        // Adds that certainly took effect: bumped after invoke returns,
        // and both crash sites sit outside the invoke (a crash at
        // `universal::retire` lands after the round's add completed, one
        // at `universal::register` before the round began).
        let adds = Arc::new(AtomicUsize::new(0));
        let group = {
            let obj = obj.clone();
            let adds = Arc::clone(&adds);
            spawn_workers(WORKERS, move |_tid| {
                let mut rounds = 0usize;
                for _ in 0..ROUNDS {
                    let mut h = obj.register();
                    h.invoke(CounterOp::Add(1));
                    adds.fetch_add(1, Ordering::SeqCst);
                    h.retire();
                    rounds += 1;
                }
                rounds
            })
        };
        assert!(
            group.await_finished(WORKERS, Duration::from_secs(60)),
            "seed {seed}: storm hung"
        );
        let mut crashed = 0usize;
        for (tid, outcome) in group.finish().into_iter().enumerate() {
            match outcome {
                Outcome::Completed(rounds) => assert_eq!(rounds, ROUNDS),
                Outcome::Crashed { site } => {
                    assert!(
                        MEMBERSHIP_SITES.contains(&site.as_str()),
                        "seed {seed}: worker {tid} crashed at foreign site {site}"
                    );
                    crashed += 1;
                }
                Outcome::Panicked { message } => {
                    panic!("seed {seed}: worker {tid} genuinely panicked: {message}")
                }
            }
        }
        failpoints::clear();

        // Crash accounting: a victim at either membership site has
        // already left the active count (retire decrements before its
        // failpoint; register crashes before claiming).
        assert_eq!(obj.active_handles(), 0, "seed {seed}: crashed clients leak active count");
        // The registry stays bounded by peak concurrency — crashed
        // clients' slots are retired-and-quiesced, hence reclaimable.
        assert!(
            obj.registry_slots() <= 2 * WORKERS,
            "seed {seed}: registry grew to {} slots",
            obj.registry_slots()
        );

        // No add lost, none duplicated, across crashes and slot reuse.
        let mut probe = obj.register();
        assert!(probe.tid() < 2 * WORKERS, "seed {seed}: probe did not reuse a low slot");
        assert_eq!(
            probe.invoke(CounterOp::Get),
            CounterResp::Value(adds.load(Ordering::SeqCst) as i64),
            "seed {seed}: counter diverged from completed adds ({crashed} crashes)"
        );
    }

    #[test]
    fn crash_storms_at_membership_sites_stay_bounded_and_exact() {
        let _guard = failpoints::exclusive();
        for seed in [11, 29, 47, 83, 131] {
            churn_storm_round(seed);
        }
        failpoints::clear();
    }
}

#[test]
fn checkpointed_churn_stays_exact_with_bounded_memory() {
    // The tentpole's two bounds at once, under real-thread churn: the
    // registry stays bounded by peak active handles (PR 6) *and* live
    // log segments stay bounded by the frontier spread (checkpointed
    // truncation) — while every add still counts exactly once.
    const WORKERS: usize = 4;
    const ROUNDS: usize = 60;
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 4, 8);
    let joins: Vec<_> = (0..WORKERS)
        .map(|_| {
            let obj = obj.clone();
            thread::spawn(move || {
                for _ in 0..ROUNDS {
                    let mut h = obj.register();
                    h.invoke(CounterOp::Add(1));
                    h.retire();
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }

    assert_eq!(obj.active_handles(), 0);
    assert!(obj.registry_slots() <= 2 * WORKERS);
    // 240 ops plus interleaved checkpoints span several segments; all
    // but the frontier neighbourhood must be gone. (Slack: concurrent
    // registrants may anchor one segment behind the newest checkpoint,
    // and the tail segment is never detached.)
    obj.reclaim();
    assert!(
        obj.reclaimed_segments() >= 1,
        "churn truncated the log: {} reclaimed",
        obj.reclaimed_segments()
    );
    assert!(
        obj.live_segments() <= 4,
        "live segments bounded by frontier spread, not arrivals: {}",
        obj.live_segments()
    );

    let mut probe = obj.register();
    assert_eq!(
        probe.invoke(CounterOp::Get),
        CounterResp::Value((WORKERS * ROUNDS) as i64),
        "no add lost across churn + truncation"
    );
}
