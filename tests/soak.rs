//! Long-haul soak for checkpointed truncation: sustained operations on
//! one dynamic universal object with a HARD bounded-RSS assertion — the
//! process footprint after warm-up must stay inside a fixed slack no
//! matter how many more operations run, because the checkpointed log
//! reclaims every segment behind the active handles' frontier. An
//! unbounded log at the CI op count (ten million) would grow by
//! hundreds of MiB and trip the bound by an order of magnitude; the
//! slack only absorbs allocator retention (freed pages glibc keeps
//! resident) and fragmentation creep, both of which plateau.
//!
//! The op mix is seeded: add amounts and refresh jitter come from a
//! printed xorshift seed (`WF_SOAK_SEED` to replay), so a failing run
//! names the exact workload that broke. `WF_SOAK_OPS` scales the total
//! op count (default 400k for a quick local pass; CI runs 10M). The
//! abstract state is checked exactly at the end — truncation must be
//! invisible to the counter no matter how many segments were dropped.

use std::time::{SystemTime, UNIX_EPOCH};

use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sched::thread;
use waitfree::sync::universal::{WfUniversal, SEGMENT_SIZE};

/// Concurrent workers per round.
const WORKERS: usize = 4;
/// Rounds of register → operate → retire; RSS is sampled between them.
const ROUNDS: usize = 8;
/// Warm-up rounds excluded from the bound (first-touch allocator and
/// arena growth land here).
const WARMUP_ROUNDS: usize = 2;
/// Hard bound: post-warm-up RSS growth allowed, MiB. Far above the
/// observed steady-state creep (tens of MiB over 10M ops, from glibc
/// retention) and far below what an un-truncated log would add
/// (~500 MiB at the CI op count).
const SLACK_MIB: f64 = 64.0;
/// Checkpoint cadence (decided ops between checkpoints).
const EVERY: usize = SEGMENT_SIZE;

/// VmRSS in MiB from `/proc/self/status`; `None` off Linux.
fn rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok().and_then(|s| s.parse().ok())
}

/// xorshift64*: tiny, seedable, good enough to jitter a workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn soak_checkpointed_rss_stays_flat() {
    let total = env_u64("WF_SOAK_OPS").unwrap_or(400_000) as usize;
    let seed = env_u64("WF_SOAK_SEED").unwrap_or_else(|| {
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(1)
    }) | 1;
    println!("soak: total_ops={total} workers={WORKERS} rounds={ROUNDS} seed={seed} (replay with WF_SOAK_SEED={seed} WF_SOAK_OPS={total})");

    let per_round = total / (ROUNDS * WORKERS);
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), per_round + 2, EVERY);
    let mut expected: i64 = 0;
    let mut baseline: Option<f64> = None;

    for round in 0..ROUNDS {
        let joins: Vec<_> = (0..WORKERS)
            .map(|w| {
                let obj = obj.clone();
                let mut rng = Rng(seed ^ ((round * WORKERS + w) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                thread::spawn(move || {
                    let mut h = obj.register();
                    let mut sum: i64 = 0;
                    // Seeded jitter: add amounts vary, and the handle
                    // occasionally replays from its frontier instead of
                    // deciding — the catch-up path must not pin memory.
                    let mut until_refresh = 64 + (rng.next() % 512) as usize;
                    for _ in 0..per_round {
                        let delta = 1 + (rng.next() % 3) as i64;
                        match h.invoke(CounterOp::FetchAndAdd(delta)) {
                            CounterResp::Value(_) => sum += delta,
                            other => panic!("seed={seed}: unexpected response {other:?}"),
                        }
                        until_refresh -= 1;
                        if until_refresh == 0 {
                            h.refresh();
                            until_refresh = 64 + (rng.next() % 512) as usize;
                        }
                    }
                    h.retire();
                    sum
                })
            })
            .collect();
        for j in joins {
            expected += j.join().unwrap();
        }

        // Every worker retired, so the final reclamation pass has run:
        // the object-level bound is exact regardless of the allocator.
        obj.reclaim();
        assert!(
            obj.live_segments() <= 8,
            "seed={seed} round={round}: {} live segments with all workers retired \
             (installed {}, reclaimed {})",
            obj.live_segments(),
            obj.installed_segments(),
            obj.reclaimed_segments()
        );

        match rss_mib() {
            None => {
                if round == 0 {
                    println!("soak: /proc/self/status unavailable; RSS bound not checked");
                }
            }
            Some(rss) => {
                println!(
                    "soak: round={round} rss={rss:.1} MiB installed={} reclaimed={} checkpoints={}",
                    obj.installed_segments(),
                    obj.reclaimed_segments(),
                    obj.checkpoints()
                );
                if round + 1 == WARMUP_ROUNDS {
                    baseline = Some(rss);
                } else if let Some(base) = baseline {
                    // The hard bound: past warm-up, the footprint may
                    // wobble inside the slack but never trend with the
                    // op count. An unbounded log fails this by ~10x.
                    assert!(
                        rss <= base + SLACK_MIB,
                        "seed={seed} round={round}: rss {rss:.1} MiB exceeds the \
                         post-warm-up baseline {base:.1} + {SLACK_MIB} MiB bound \
                         — memory is growing with the op count"
                    );
                }
            }
        }
    }

    // Truncation is invisible to the abstract state: the counter saw
    // every decided add exactly once, across every dropped segment.
    let mut probe = obj.register();
    assert_eq!(
        probe.invoke(CounterOp::Get),
        CounterResp::Value(expected),
        "seed={seed}: final state diverged after {total} ops"
    );
    assert!(
        obj.checkpoints() > 0 && obj.reclaimed_segments() > 0,
        "seed={seed}: the soak never truncated (checkpoints={}, reclaimed={})",
        obj.checkpoints(),
        obj.reclaimed_segments()
    );
}
