//! Fault-injection stress tests (feature `failpoints`): wait-freedom
//! under crashes and stalls on real hardware atomics.
//!
//! The paper's wait-freedom guarantee (§3) is *per process*: every
//! process completes each operation in a bounded number of its own
//! steps, "regardless of the execution speeds of the other processes" —
//! including speed zero (crash) and arbitrarily slow (stall). These
//! tests make that operational: an adversary halts or parks a chosen
//! subset of threads at linearization-relevant failpoint sites inside
//! the universal construction, and we assert that
//!
//! 1. the survivors complete all their operations *while the victims
//!    are still dead or parked*,
//! 2. no completed operation spent more than O(n) consensus steps
//!    threading itself (the helping bound), and
//! 3. the observed history — crashed threads' announced-but-unfinished
//!    operations included as pending invocations — is accepted by
//!    [`waitfree::model::linearize`] under `PendingPolicy::MayTakeEffect`.
//!
//! Every scenario runs against **all** universal-object paths: the
//! optimised pointer-CAS/segmented-log implementation in both decide
//! modes (per-op and batch-combining), the combining path with
//! checkpointed log truncation live (segments reclaimed mid-storm), and
//! the seed `ConsensusCell` baseline (see `common::CounterPath`) —
//! neither optimisation may cost any fault-tolerance property. The
//! combining path additionally gets a crash-during-combine scenario: a
//! thread killed at `universal::collect`, mid-scan with other threads'
//! pending entries already gathered, must leave every collected op
//! still helpable (`MayTakeEffect` per batch member). The checkpointed
//! path gets two deterministic storms of its own: a proposer killed at
//! `universal::checkpoint` (nothing published, cadence retryable) and a
//! reclaimer killed at `universal::reclaim` (lock released by its RAII
//! guard, nothing freed or leaked), each with exact-count
//! postconditions.
//!
//! The sharded store (`waitfree-store`) gets its own storms at the
//! `store::route`/`store::multi`/`store::snapshot` sites: single-key
//! bump storms with exact final counts (no op lost, none duplicated),
//! a multi-key op crashed between every pair of per-shard steps and
//! driven to completion by a conflicting helper (with snapshots taken
//! mid-stall proving all-or-nothing visibility), a snapshot
//! initiator killed mid-marker-sweep (later snapshots unaffected), and
//! a reader killed at `universal::read` mid-log-free-read (zero log
//! growth, zero announced orphans — the read path leaves no trace).
//!
//! Run with `cargo test --features failpoints --test fault_tolerance`.
#![cfg(feature = "failpoints")]

mod common;

use waitfree::sched::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use waitfree::sched::thread;
use std::time::Duration;

use common::{BatchedPath, CellPath, CheckpointedPath, CounterPath, PtrPath};
use waitfree::faults::failpoints::{self, FailpointConfig, FaultAction, Fire};
use waitfree::faults::harness::{install_adversary, plan_adversary, spawn_workers, Outcome};
use waitfree::model::{linearize, History, PendingPolicy, Pid};
use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sync::universal::{UniversalError, WfUniversal, SEGMENT_SIZE};

/// Sites the adversary may target: announce published, pre-CAS, post-CAS.
/// Shared by every path.
const SITES: &[&str] = &["universal::announced", "universal::cas", "universal::decided"];

/// The combining path also exposes the collect scan; a victim planned
/// there crashes while building a batch. (Not in `SITES`: the site never
/// fires on the per-op or cell paths, so a crash planned at it would
/// silently not happen.)
const BATCH_SITES: &[&str] =
    &["universal::announced", "universal::collect", "universal::cas", "universal::decided"];

/// One timeline event: an operation's invocation or its response.
#[derive(Clone, Debug)]
enum Ev {
    Inv(usize),
    Resp(usize, CounterResp),
}

/// Replay stamped events into a [`History`]. Invocation stamps are taken
/// before entering `invoke` and response stamps after it returns, so each
/// recorded interval contains the real one; this can only widen overlap,
/// never invent precedence, keeping the linearizability verdict sound.
fn build_history(mut events: Vec<(u64, Ev)>) -> History<CounterOp, CounterResp> {
    events.sort_by_key(|(stamp, _)| *stamp);
    let mut h = History::new();
    for (_, ev) in events {
        match ev {
            Ev::Inv(tid) => h.invoke(Pid(tid), CounterOp::FetchAndAdd(1)),
            Ev::Resp(tid, resp) => {
                h.respond(Pid(tid), resp).expect("response follows its invocation");
            }
        }
    }
    h
}

/// The full adversarial scenario, per seed and per implementation path:
/// 6 threads hammer one wait-free counter; 2 of them are crashed/stalled
/// mid-operation.
fn adversarial_round<P: CounterPath>(seed: u64, sites: &[&str]) {
    const N: usize = 6;
    const VICTIMS: usize = 2;
    const OPS: usize = 8;

    let plan = plan_adversary(seed, N, sites, VICTIMS);
    let stalled: Vec<usize> = plan
        .iter()
        .filter(|v| matches!(v.kind, FaultAction::Stall))
        .map(|v| v.tid)
        .collect();
    let crashed: Vec<usize> = plan
        .iter()
        .filter(|v| matches!(v.kind, FaultAction::Crash))
        .map(|v| v.tid)
        .collect();
    failpoints::set_seed(seed);
    install_adversary(&plan);

    let handles: Arc<Vec<Mutex<Option<P>>>> = Arc::new(
        P::create(N, OPS).into_iter().map(|h| Mutex::new(Some(h))).collect(),
    );
    let clock = Arc::new(AtomicU64::new(0));
    let events: Arc<Mutex<Vec<(u64, Ev)>>> = Arc::new(Mutex::new(Vec::new()));

    let group = {
        let handles = Arc::clone(&handles);
        let clock = Arc::clone(&clock);
        let events = Arc::clone(&events);
        spawn_workers(N, move |tid| {
            let mut h = handles[tid].lock().unwrap().take().expect("one handle per tid");
            let mut responses = Vec::with_capacity(OPS);
            for _ in 0..OPS {
                let stamp = clock.fetch_add(1, Ordering::SeqCst);
                events.lock().unwrap().push((stamp, Ev::Inv(tid)));
                let resp = h.invoke(CounterOp::FetchAndAdd(1));
                let stamp = clock.fetch_add(1, Ordering::SeqCst);
                events.lock().unwrap().push((stamp, Ev::Resp(tid, resp.clone())));
                responses.push(resp);
            }
            (responses, h.max_threading_steps())
        })
    };

    // (1) Survivors and crash victims terminate while stall victims are
    // still parked: wait-freedom does not wait for the slow.
    assert!(
        group.await_finished(N - stalled.len(), Duration::from_secs(60)),
        "[{}] seed {seed}: survivors did not complete while victims were down",
        P::NAME
    );

    let outcomes = group.finish();
    for (tid, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Outcome::Completed((responses, max_steps)) => {
                assert!(
                    !crashed.contains(&tid),
                    "[{}] seed {seed}: crash victim {tid} completed all ops",
                    P::NAME
                );
                assert_eq!(responses.len(), OPS);
                // (2) The helping bound: O(n) own consensus steps per op.
                assert!(
                    *max_steps <= 2 * N + 8,
                    "[{}] seed {seed}: thread {tid} took {max_steps} threading steps (n = {N})",
                    P::NAME
                );
            }
            Outcome::Crashed { site } => {
                assert!(
                    crashed.contains(&tid),
                    "[{}] seed {seed}: unplanned crash of thread {tid} at {site}",
                    P::NAME
                );
                assert!(
                    sites.contains(&site.as_str()),
                    "[{}] seed {seed}: foreign site {site}",
                    P::NAME
                );
            }
            Outcome::Panicked { message } => {
                panic!("[{}] seed {seed}: thread {tid} genuinely panicked: {message}", P::NAME)
            }
        }
    }

    // (3) The recorded history — pending invocations of the crashed
    // included — linearizes against the sequential counter.
    let events = Arc::try_unwrap(events).expect("all workers joined").into_inner().unwrap();
    let history = build_history(events);
    let pending = history.ops().iter().filter(|op| op.resp.is_none()).count();
    assert!(
        pending <= VICTIMS,
        "[{}] seed {seed}: at most one pending op per victim",
        P::NAME
    );
    let report = linearize(&history, &Counter::new(0), PendingPolicy::MayTakeEffect);
    assert!(
        report.outcome.is_ok(),
        "[{}] seed {seed}: non-linearizable history with {pending} pending ops: {history:?}",
        P::NAME
    );
}

#[test]
fn survivors_complete_and_history_linearizes_under_adversary() {
    let _guard = failpoints::exclusive();
    for seed in [1, 2, 3, 4, 5] {
        failpoints::clear();
        adversarial_round::<PtrPath>(seed, SITES);
        failpoints::clear();
        adversarial_round::<BatchedPath>(seed, BATCH_SITES);
        failpoints::clear();
        adversarial_round::<CheckpointedPath>(seed, BATCH_SITES);
        failpoints::clear();
        adversarial_round::<CellPath>(seed, SITES);
    }
    failpoints::clear();
}

fn stalled_thread_scenario<P: CounterPath>() {
    failpoints::clear();

    const N: usize = 3;
    const OPS: usize = 6;
    failpoints::configure(
        "universal::cas",
        FailpointConfig {
            action: FaultAction::Stall,
            fire: Fire::Nth(2),
            tid: Some(0),
            budget: Some(1),
        },
    );

    let handles: Arc<Vec<Mutex<Option<P>>>> = Arc::new(
        P::create(N, OPS).into_iter().map(|h| Mutex::new(Some(h))).collect(),
    );
    let group = {
        let handles = Arc::clone(&handles);
        spawn_workers(N, move |tid| {
            let mut h = handles[tid].lock().unwrap().take().unwrap();
            let mut responses = Vec::new();
            for _ in 0..OPS {
                responses.push(h.invoke(CounterOp::FetchAndAdd(1)));
            }
            responses
        })
    };

    // The two unstalled threads finish; thread 0 ends up parked at the
    // site (it may still be on its way there when the survivors finish,
    // hence the bounded wait rather than an instant assert).
    assert!(group.await_finished(N - 1, Duration::from_secs(60)), "[{}]", P::NAME);
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while failpoints::stalled_count() != 1 {
        assert!(std::time::Instant::now() < deadline, "[{}] victim never parked", P::NAME);
        thread::yield_now();
    }
    assert_eq!(
        group.finished_count(),
        N - 1,
        "[{}] the parked victim never counts as finished",
        P::NAME
    );

    // finish() releases the stall; the victim completes its remaining ops.
    let outcomes = group.finish();
    let mut all: Vec<i64> = outcomes
        .into_iter()
        .flat_map(|o| o.completed().expect("stall is transparent after release"))
        .map(|r| match r {
            CounterResp::Value(v) => v,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    all.sort_unstable();
    let expect: Vec<i64> = (0..(N * OPS) as i64).collect();
    assert_eq!(all, expect, "[{}] every fetch-and-add ticket taken exactly once", P::NAME);
    failpoints::clear();
}

#[test]
fn stalled_thread_is_observable_parked_then_resumes() {
    let _guard = failpoints::exclusive();
    stalled_thread_scenario::<PtrPath>();
    stalled_thread_scenario::<BatchedPath>();
    stalled_thread_scenario::<CheckpointedPath>();
    stalled_thread_scenario::<CellPath>();
}

fn log_exhaustion_scenario<P: CounterPath>() {
    failpoints::clear();

    const N: usize = 3;
    // Log cap far smaller than the op budget: exhaustion is guaranteed.
    const CAPACITY: usize = 24;
    failpoints::configure(
        "universal::decided",
        FailpointConfig {
            action: FaultAction::Crash,
            fire: Fire::Nth(3),
            tid: Some(2),
            budget: Some(1),
        },
    );

    let handles: Arc<Vec<Mutex<Option<P>>>> = Arc::new(
        P::create_capped(N, 1000, CAPACITY).into_iter().map(|h| Mutex::new(Some(h))).collect(),
    );
    let group = {
        let handles = Arc::clone(&handles);
        spawn_workers(N, move |tid| {
            let mut h = handles[tid].lock().unwrap().take().unwrap();
            let mut ok = 0usize;
            loop {
                match h.try_invoke(CounterOp::FetchAndAdd(1)) {
                    Ok(_) => ok += 1,
                    Err(e @ UniversalError::LogFull { .. }) => return (ok, e),
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
        })
    };

    // Everyone terminates: the exhausted log surfaces as an error value,
    // not a deadlock or abort, even though thread 2 died mid-operation.
    assert!(group.await_finished(N - 1, Duration::from_secs(60)), "[{}]", P::NAME);
    let outcomes = group.finish();
    let mut total_ok = 0usize;
    for (tid, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Outcome::Completed((ok, UniversalError::LogFull { capacity, .. })) => {
                assert_eq!(capacity, CAPACITY, "[{}]", P::NAME);
                total_ok += ok;
            }
            Outcome::Crashed { site } => {
                assert_eq!(tid, 2, "[{}] only the planned victim crashes", P::NAME);
                assert_eq!(site, "universal::decided", "[{}]", P::NAME);
            }
            other => panic!("[{}] thread {tid}: unexpected outcome {other:?}", P::NAME),
        }
    }
    // Each log position carries at most one op per thread (exactly one
    // without combining), so completed ops are bounded by positions.
    let per_position = if P::COMBINES { N } else { 1 };
    assert!(
        total_ok <= CAPACITY * per_position,
        "[{}] {total_ok} ops cannot fit in {CAPACITY} positions of ≤ {per_position} ops",
        P::NAME
    );
    assert!(total_ok > 0, "[{}] some ops completed before exhaustion", P::NAME);
    failpoints::clear();
}

#[test]
fn log_exhaustion_is_a_typed_error_even_with_a_crashed_peer() {
    let _guard = failpoints::exclusive();
    log_exhaustion_scenario::<PtrPath>();
    log_exhaustion_scenario::<BatchedPath>();
    log_exhaustion_scenario::<CheckpointedPath>();
    log_exhaustion_scenario::<CellPath>();
}

/// A handle reused after a *caught* crash mid-invoke (its op announced
/// but not yet threaded) must recover the orphan on a capped object
/// exactly as on an unbounded one, as long as the log actually has
/// room: the cap bounds log positions, it is not a one-way recovery
/// fuse. Regression — this used to return `LogFull { position: cap,
/// capacity: cap }` with the log half-empty. (The cell path needs no
/// twin test: its per-`(tid, seq)` announce slots are never
/// overwritten, so it recovers without a pending-op gate at all.)
#[test]
fn caught_crash_on_capped_log_with_room_recovers_the_orphan() {
    let _guard = failpoints::exclusive();
    failpoints::clear();

    let mut handles = WfUniversal::with_capacity(Counter::new(0), 1, 8, 4);
    let mut h = handles.remove(0);
    assert_eq!(h.invoke(CounterOp::FetchAndAdd(1)), CounterResp::Value(0));

    // Die right after the announce-slot publication: the op (seq 1) is
    // announced, helpable, and unthreaded.
    failpoints::configure(
        "universal::announced",
        FailpointConfig {
            action: FaultAction::Crash,
            fire: Fire::Nth(1),
            tid: None,
            budget: Some(1),
        },
    );
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        h.invoke(CounterOp::FetchAndAdd(1))
    }));
    assert!(crashed.is_err(), "the planned crash fires inside the invoke");
    failpoints::clear();

    // The next invoke finishes the orphan first, then its own op: both
    // increments take effect, in order, inside the cap of 4.
    assert_eq!(h.invoke(CounterOp::FetchAndAdd(1)), CounterResp::Value(2));
    assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(3));
    // And the cap still binds: position 4 does not exist.
    match h.try_invoke(CounterOp::FetchAndAdd(1)) {
        Err(UniversalError::LogFull { position, capacity }) => {
            assert_eq!(position, 4);
            assert_eq!(capacity, 4);
        }
        other => panic!("expected LogFull at the real cap, got {other:?}"),
    }
}

/// Crash-during-combine: a thread killed at `universal::collect` dies
/// *while building a batch* — after announcing its own op, holding
/// refcount bumps on whatever pending entries its scan already
/// gathered. The scan writes nothing shared, so the crash must leave
/// every one of those ops announced and helpable: the survivors (kept
/// mid-invoke often enough by a yield storm that real multi-op batches
/// form) complete everything, and the history with the victim's
/// announced-but-unfinished op linearizes under `MayTakeEffect`.
#[test]
fn crash_during_combine_leaves_collected_ops_helpable() {
    let _guard = failpoints::exclusive();
    failpoints::clear();

    const N: usize = 4;
    const OPS: usize = 6;
    const VICTIM: usize = 1;

    // Every thread yields between collecting and deciding: threads sit
    // mid-decide with announced ops, so pending backlogs build up and
    // collect scans genuinely gather other threads' entries.
    failpoints::configure(
        "universal::cas",
        FailpointConfig { action: FaultAction::Yield, fire: Fire::Always, tid: None, budget: None },
    );
    // The victim dies at its first collect — mid-combine, with its
    // current op already announced. (First, not a later one: every
    // threading-loop iteration starts with a collect, so the victim
    // cannot complete an op without passing the site, making the crash
    // deterministic.)
    failpoints::configure(
        "universal::collect",
        FailpointConfig {
            action: FaultAction::Crash,
            fire: Fire::Nth(1),
            tid: Some(VICTIM),
            budget: Some(1),
        },
    );

    // A large budget so the victim cannot run out of announce slots in
    // the (theoretical) window where helpers complete its ops before it
    // ever reaches a collect.
    let handles: Arc<Vec<Mutex<Option<BatchedPath>>>> = Arc::new(
        BatchedPath::create(N, 1000).into_iter().map(|h| Mutex::new(Some(h))).collect(),
    );
    let clock = Arc::new(AtomicU64::new(0));
    let events: Arc<Mutex<Vec<(u64, Ev)>>> = Arc::new(Mutex::new(Vec::new()));

    let group = {
        let handles = Arc::clone(&handles);
        let clock = Arc::clone(&clock);
        let events = Arc::clone(&events);
        spawn_workers(N, move |tid| {
            let mut h = handles[tid].lock().unwrap().take().expect("one handle per tid");
            for _ in 0..OPS {
                let stamp = clock.fetch_add(1, Ordering::SeqCst);
                events.lock().unwrap().push((stamp, Ev::Inv(tid)));
                let resp = h.invoke(CounterOp::FetchAndAdd(1));
                let stamp = clock.fetch_add(1, Ordering::SeqCst);
                events.lock().unwrap().push((stamp, Ev::Resp(tid, resp)));
            }
            h
        })
    };

    assert!(
        group.await_finished(N - 1, Duration::from_secs(60)),
        "survivors did not complete past the mid-combine crash"
    );
    let outcomes = group.finish();
    let mut survivor_handle = None;
    for (tid, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Outcome::Completed(h) => {
                assert_ne!(tid, VICTIM, "the victim cannot have completed all ops");
                assert!(
                    h.max_threading_steps() <= 2 * N + 8,
                    "thread {tid} exceeded the helping bound mid-crash"
                );
                survivor_handle = Some(h);
            }
            Outcome::Crashed { site } => {
                assert_eq!(tid, VICTIM, "only the planned victim crashes");
                assert_eq!(site, "universal::collect", "crash site is the combine scan");
            }
            Outcome::Panicked { message } => panic!("thread {tid} panicked: {message}"),
        }
    }

    // Per-batch-member accounting. The victim completed some ops
    // (responses recorded), then crashed with exactly one more
    // announced: that one is MayTakeEffect — helpers may have threaded
    // it into a batch or not — so the final counter value is the
    // completed count plus at most one.
    let events = Arc::try_unwrap(events).expect("all workers joined").into_inner().unwrap();
    let victim_completed = events
        .iter()
        .filter(|(_, ev)| matches!(ev, Ev::Resp(tid, _) if *tid == VICTIM))
        .count();
    let completed_total = (N - 1) * OPS + victim_completed;
    let mut survivor = survivor_handle.expect("N-1 survivors").0;
    let final_value = match survivor.invoke(CounterOp::Get) {
        CounterResp::Value(v) => v as usize,
        other => panic!("unexpected {other:?}"),
    };
    assert!(
        final_value == completed_total || final_value == completed_total + 1,
        "final counter {final_value} vs {completed_total} completed ops \
         (+ at most one pending victim op)"
    );

    // And the stamped history — the victim's announced-but-unfinished
    // op as a pending invocation — linearizes with MayTakeEffect.
    let history = build_history(events);
    let pending = history.ops().iter().filter(|op| op.resp.is_none()).count();
    assert_eq!(pending, 1, "exactly the victim's mid-combine op is pending");
    let report = linearize(&history, &Counter::new(0), PendingPolicy::MayTakeEffect);
    assert!(
        report.outcome.is_ok(),
        "non-linearizable history after mid-combine crash: {history:?}"
    );
    failpoints::clear();
}

/// Crash-during-checkpoint: the checkpoint proposer dies at
/// `universal::checkpoint` — after its op was threaded and applied, but
/// before the checkpoint image was built or proposed. A checkpoint
/// publishes nothing before its CAS, so the exact-count postconditions
/// are: the victim's op took effect (it was decided before the cadence
/// check runs), *zero* checkpoints exist after the crash, and the
/// cadence simply re-fires on the next surviving handle's op — which
/// then checkpoints successfully.
#[test]
fn crash_during_checkpoint_leaves_cadence_retryable() {
    let _guard = failpoints::exclusive();
    failpoints::clear();

    const EVERY: usize = 4;
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 1000, EVERY);

    // Three ops from the main handle: cursor stays below the cadence,
    // so the site is never hit here and the victim's hit is the first.
    let mut h0 = obj.register();
    for _ in 0..EVERY - 1 {
        h0.invoke(CounterOp::Add(1));
    }
    assert_eq!(obj.checkpoints(), 0, "cadence not yet due");

    failpoints::configure(
        "universal::checkpoint",
        FailpointConfig {
            action: FaultAction::Crash,
            fire: Fire::Nth(1),
            tid: None,
            budget: Some(1),
        },
    );

    // The victim's single op is position EVERY-1; after applying it the
    // victim's cursor reaches EVERY, the cadence fires, and the crash
    // lands deterministically at its first checkpoint attempt.
    let victim_obj = obj.clone();
    let group = spawn_workers(1, move |_tid| {
        let mut h = victim_obj.register();
        h.invoke(CounterOp::FetchAndAdd(1));
        unreachable!("the victim dies inside its first invoke");
    });
    let outcomes = group.finish();
    match &outcomes[0] {
        Outcome::Crashed { site } => assert_eq!(site, "universal::checkpoint"),
        other => panic!("expected a planned crash, got {other:?}"),
    }

    // Exact counts: the op itself committed (4 increments total), no
    // checkpoint was decided, nothing was reclaimed.
    assert_eq!(obj.checkpoints(), 0, "a pre-CAS crash publishes no checkpoint");
    assert_eq!(obj.reclaimed_segments(), 0);
    assert_eq!(obj.active_handles(), 2, "the crashed client stays counted");

    // The cadence is still armed: the next op on a surviving handle
    // replays past position EVERY and checkpoints (the budgeted
    // failpoint is spent, so it passes through).
    match h0.invoke(CounterOp::Get) {
        CounterResp::Value(v) => assert_eq!(v, EVERY as i64, "victim's op took effect"),
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(obj.checkpoints(), 1, "a survivor retried the checkpoint");
    failpoints::clear();
}

/// Crash-during-reclaim: the reclaimer dies at `universal::reclaim` —
/// after winning the reclaim try-lock, before detaching anything. The
/// crash must unwind through the lock's RAII guard (leaving reclamation
/// available, not wedged) and must not free or leak any segment: the
/// exact counts are one decided checkpoint, zero reclaimed segments —
/// and a later handle's reclaim pass truncates normally.
#[test]
fn crash_during_reclaim_releases_the_lock_and_frees_nothing() {
    let _guard = failpoints::exclusive();
    failpoints::clear();

    const EVERY: usize = 16;
    let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 1000, EVERY);

    failpoints::configure(
        "universal::reclaim",
        FailpointConfig {
            action: FaultAction::Crash,
            fire: Fire::Nth(1),
            tid: None,
            budget: Some(1),
        },
    );

    // The victim runs alone until its own checkpoint wins; the winning
    // path calls the reclaimer, whose first firing crashes. (Its handle
    // drop also reaches the site, but the budget is already spent.)
    let victim_obj = obj.clone();
    let group = spawn_workers(1, move |_tid| {
        let mut h = victim_obj.register();
        for _ in 0..2 * EVERY {
            h.invoke(CounterOp::Add(1));
        }
        unreachable!("the victim dies at its first winning checkpoint");
    });
    let outcomes = group.finish();
    match &outcomes[0] {
        Outcome::Crashed { site } => assert_eq!(site, "universal::reclaim"),
        other => panic!("expected a planned crash, got {other:?}"),
    }

    // Exact counts: the checkpoint that triggered reclamation was
    // already decided; the reclaimer freed nothing before dying.
    assert_eq!(obj.checkpoints(), 1, "the triggering checkpoint committed");
    assert_eq!(obj.reclaimed_segments(), 0, "a pre-detach crash frees nothing");

    // The victim's ops all committed: exactly EVERY increments (the
    // checkpoint-winning op included) — the rest of its loop never ran.
    let mut probe = obj.register();
    match probe.invoke(CounterOp::Get) {
        CounterResp::Value(v) => assert_eq!(v, EVERY as i64),
        other => panic!("unexpected {other:?}"),
    }

    // The lock was released by the guard: drive the probe far enough
    // that segments fall behind every frontier, and reclamation runs.
    for _ in 0..4 * SEGMENT_SIZE {
        probe.invoke(CounterOp::Add(1));
    }
    assert!(
        obj.reclaimed_segments() >= 1,
        "reclamation still available after the crash: {} reclaimed",
        obj.reclaimed_segments()
    );
    match probe.invoke(CounterOp::Get) {
        CounterResp::Value(v) => assert_eq!(v, (EVERY + 4 * SEGMENT_SIZE) as i64),
        other => panic!("unexpected {other:?}"),
    }
    failpoints::clear();
}

// ---------------------------------------------------------------------------
// Sharded-store storms (`waitfree-store`): the `store::route`,
// `store::multi` and `store::snapshot` sites, with exact-count
// postconditions — no lost or duplicated single-key ops, crashed
// multi-key ops completed by helpers on every involved shard, and
// snapshots never observing a torn multi-op.
// ---------------------------------------------------------------------------

use waitfree::store::{Bump, ShardedStore, StoreConfig};

fn store4() -> ShardedStore<u64, i64, Bump> {
    ShardedStore::new(&StoreConfig { shards: 4, ..StoreConfig::default() })
}

/// One key per shard, `keys[s]` routed to shard `s`.
fn keys_per_shard(store: &ShardedStore<u64, i64, Bump>) -> Vec<u64> {
    let mut keys = vec![u64::MAX; store.shards()];
    let mut found = 0;
    for k in 0u64.. {
        let s = store.shard_of(&k);
        if keys[s] == u64::MAX {
            keys[s] = k;
            found += 1;
            if found == store.shards() {
                break;
            }
        }
    }
    keys
}

/// N workers each bump a private key OPS times; a seed-chosen victim is
/// crashed at its `kth` hit of `site`. Because the keys are private,
/// every key's final value is an exact function of how far its owner
/// got: `done` completed bumps plus `orphan_effect` for the victim's
/// in-flight op (0 when the crash lands before the invoke at
/// `store::route`, 1 when it lands after the announce at
/// `universal::announced` — helpers then thread the orphan exactly
/// once; watermark dedup makes a duplicate impossible).
fn single_key_storm(seed: u64, site: &str, orphan_effect: i64) {
    const N: usize = 5;
    const OPS: usize = 12;
    let victim = (seed as usize) % N;
    let kth = 1 + (seed as usize * 7) % OPS;
    failpoints::configure(
        site,
        FailpointConfig::once_for(FaultAction::Crash, victim, kth as u64),
    );

    let store = store4();
    let done: Arc<Vec<AtomicU64>> = Arc::new((0..N).map(|_| AtomicU64::new(0)).collect());
    let group = {
        let store = store.clone();
        let done = Arc::clone(&done);
        spawn_workers(N, move |tid| {
            let mut h = store.handle();
            for _ in 0..OPS {
                h.fetch_update(tid as u64, Bump(1));
                done[tid].fetch_add(1, Ordering::SeqCst);
            }
        })
    };
    let outcomes = group.finish();
    for (tid, outcome) in outcomes.iter().enumerate() {
        match outcome {
            Outcome::Completed(()) => {
                assert_ne!(tid, victim, "seed {seed}: the victim completed all ops");
            }
            Outcome::Crashed { site: s } => {
                assert_eq!(tid, victim, "seed {seed}: unplanned crash of {tid} at {s}");
                assert_eq!(s, site);
            }
            Outcome::Panicked { message } => {
                panic!("seed {seed}: thread {tid} genuinely panicked: {message}")
            }
        }
    }
    failpoints::clear();

    // Flush: one no-op bump per key threads any announced orphan on its
    // shard (batch combining collects every pending announced op), so
    // the final values are deterministic exact counts.
    let mut h = store.handle();
    for w in 0..N {
        h.fetch_update(w as u64, Bump(0));
    }
    for w in 0..N {
        let completed = done[w].load(Ordering::SeqCst) as i64;
        let expected = completed + if w == victim { orphan_effect } else { 0 };
        if w != victim {
            assert_eq!(completed, OPS as i64, "seed {seed}: survivor {w} fell short");
        } else {
            assert_eq!(completed, (kth - 1) as i64, "seed {seed}: victim progress");
        }
        assert_eq!(
            h.get(&(w as u64)),
            Some(expected),
            "seed {seed}: key {w} lost or duplicated a bump (completed {completed})"
        );
    }
}

#[test]
fn store_single_key_ops_survive_crash_storms_exactly() {
    let _guard = failpoints::exclusive();
    // Crash before routing: the in-flight op never reached any log.
    for seed in [11, 12, 13, 14] {
        failpoints::clear();
        single_key_storm(seed, "store::route", 0);
    }
    // Crash after announcing: the in-flight op is an orphan that
    // helpers must apply exactly once.
    for seed in [21, 22, 23, 24] {
        failpoints::clear();
        single_key_storm(seed, "universal::announced", 1);
    }
    failpoints::clear();
}

/// A 4-shard multi_put crashed at its `nth` hit of `store::multi`
/// (hits 1..=4 are the ascending prepares, 5..=8 the ascending
/// resolves, 9..=12 the ascending settle sweep that retires the commit
/// from the shards' possibly-torn capture windows). Postconditions,
/// exact in all cases:
///
/// * a snapshot taken while the multi is stalled is never torn —
///   all-or-nothing depending on whether any shard holds the commit
///   (a crash mid-settle leaves the id in some capture windows, which
///   must cost nothing but capture bytes);
/// * a conflicting single-key `put` helps the multi to completion from
///   the replicated descriptor, then applies itself — every involved
///   shard ends with the multi's write (the helper's own put layered
///   on top of its target key).
fn crashed_multi_round(nth: u64) {
    let store = store4();
    let keys = keys_per_shard(&store);
    let mut h = store.handle();
    for (s, &k) in keys.iter().enumerate() {
        h.put(k, s as i64);
    }

    failpoints::configure(
        "store::multi",
        FailpointConfig::once_for(FaultAction::Crash, 0, nth),
    );
    let group = {
        let store = store.clone();
        let keys = keys.clone();
        spawn_workers(1, move |_tid| {
            let mut hv = store.handle();
            hv.multi_put(keys.iter().map(|&k| (k, Some(100))));
            unreachable!("nth {nth}: the victim dies mid-multi");
        })
    };
    let outcomes = group.finish();
    match &outcomes[0] {
        Outcome::Crashed { site } => assert_eq!(site, "store::multi"),
        other => panic!("nth {nth}: expected a planned crash, got {other:?}"),
    }
    failpoints::clear();

    // Hit `nth` fired *before* its step, so prepares are decided on
    // shards `0..nth-1` (capped at all 4), resolves on shards
    // `0..nth-5` and settles on shards `0..nth-9`; the multi is
    // commit-visible somewhere iff nth >= 6. nth == 1 is the
    // degenerate case: nothing decided anywhere, and the descriptor
    // died with the victim — the multi never happened.
    let committed_somewhere = nth >= 6;

    // (1) Snapshot atomicity while the multi is stalled: committed on
    // some shard (a resolve decided) => visible on all involved shards
    // via torn-multi repair; committed nowhere => visible on none.
    let snap = h.snapshot();
    let visible: Vec<bool> =
        keys.iter().map(|k| snap.map.get(k) == Some(&100)).collect();
    if committed_somewhere {
        assert!(
            visible.iter().all(|&v| v),
            "nth {nth}: committed multi torn in a snapshot: {visible:?}"
        );
    } else {
        assert!(
            visible.iter().all(|&v| !v),
            "nth {nth}: uncommitted multi leaked into a snapshot: {visible:?}"
        );
    }

    // (2) Helping: a put on a key that is still locked — shard 0's
    // while resolution hasn't begun there (nth <= 5; its prepare was
    // hit 1), shard 3's once early resolves have already freed the low
    // shards (6 <= nth <= 8; its own resolve would have been hit 8) —
    // completes the stalled multi from the replicated descriptor, then
    // applies. multi_put has no expectations, so the helped verdict is
    // commit: the observed prev is exactly the multi's write. For
    // nth >= 9 every lock is already released (the crash landed in the
    // settle sweep), so the put applies directly over the committed
    // write — same observable outcome.
    let c = if committed_somewhere { 3 } else { 0 };
    let prev = h.put(keys[c], 777);
    if nth == 1 {
        assert_eq!(prev, Some(0), "nth 1: no multi state existed to see");
    } else {
        assert_eq!(prev, Some(100), "nth {nth}: helper saw a partial multi");
    }
    let expected_at = |s: usize| {
        if s == c {
            777
        } else if nth == 1 {
            s as i64
        } else {
            100
        }
    };
    for (s, &k) in keys.iter().enumerate() {
        assert_eq!(h.get(&k), Some(expected_at(s)), "nth {nth}: shard {s} torn");
    }

    // (3) All locks were released by the resolution: a fresh multi over
    // the same keys commits without help.
    assert!(h.multi_cas(
        keys.iter().enumerate().map(|(s, &k)| (k, Some(expected_at(s)))),
        keys.iter().map(|&k| (k, Some(-1))),
    ));
    let snap = h.snapshot();
    assert!(keys.iter().all(|k| snap.map.get(k) == Some(&-1)));
}

#[test]
fn store_crashed_multi_op_is_helped_and_never_torn() {
    let _guard = failpoints::exclusive();
    for nth in 1..=12 {
        failpoints::clear();
        crashed_multi_round(nth);
    }
    failpoints::clear();
}

/// A reader crashed at `universal::read` — after the frontier load,
/// before the catch-up replay — must perturb *nothing*: the log-free
/// read path announces no entry, appends no log position, and performs
/// no shared-log RMW, so a reader dying mid-read is invisible to every
/// other handle. Exact postconditions, per crash point (the `nth` read
/// of a 4-key sweep, one key per shard, via single `get`s and via one
/// `multi_get`):
///
/// * every shard's decided log is byte-for-byte what the writes alone
///   produced — zero growth, zero reordering;
/// * no announced orphan is left for helpers to thread: a later no-op
///   bump per shard decides exactly **one** new member there (batch
///   combining would collect a leftover orphan into that decide, so a
///   count of one proves the slot was never published);
/// * all values are intact.
#[test]
fn store_crashed_reader_perturbs_nothing() {
    let _guard = failpoints::exclusive();
    failpoints::clear();

    let store = store4();
    let keys = keys_per_shard(&store);
    let mut h = store.handle();
    for (s, &k) in keys.iter().enumerate() {
        h.put(k, 10 * s as i64);
    }
    // Byte-exact decided prefix per shard before any reader runs.
    let before: Vec<Vec<(usize, usize)>> =
        (0..store.shards()).map(|s| h.shard_handle(s).decided_log()).collect();

    // Crash a reader at each of its four read linearization points, on
    // both read surfaces: `get` per key, and one batched `multi_get`
    // (which performs one frontier read per shard group, ascending).
    for nth in 1..=4u64 {
        for batched in [false, true] {
            failpoints::clear();
            failpoints::configure(
                "universal::read",
                FailpointConfig::once_for(FaultAction::Crash, 0, nth),
            );
            let group = {
                let store = store.clone();
                let keys = keys.clone();
                spawn_workers(1, move |_tid| {
                    let mut hv = store.handle();
                    if batched {
                        let _ = hv.multi_get(&keys);
                    } else {
                        for &k in &keys {
                            let _ = hv.get(&k);
                        }
                    }
                    unreachable!("nth {nth}: the reader dies mid-read");
                })
            };
            let outcomes = group.finish();
            match &outcomes[0] {
                Outcome::Crashed { site } => assert_eq!(site, "universal::read"),
                other => panic!("nth {nth} batched {batched}: expected a crash, got {other:?}"),
            }
            // Zero log growth on every shard, byte for byte.
            for (s, want) in before.iter().enumerate() {
                assert_eq!(
                    &h.shard_handle(s).decided_log(),
                    want,
                    "nth {nth} batched {batched}: a crashed reader grew shard {s}'s log"
                );
            }
        }
    }
    failpoints::clear();

    // No announced orphans anywhere: one no-op bump per shard decides
    // exactly one new member there (an orphan would ride along in the
    // same batch and show up as a second member).
    for &k in &keys {
        h.fetch_update(k, Bump(0));
    }
    for (s, want) in before.iter().enumerate() {
        assert_eq!(
            h.shard_handle(s).decided_log().len(),
            want.len() + 1,
            "shard {s}: a crashed reader left an announced orphan behind"
        );
    }
    // Values intact.
    for (s, &k) in keys.iter().enumerate() {
        assert_eq!(h.get(&k), Some(10 * s as i64), "shard {s}");
    }
}

/// A snapshot initiator crashed at `store::snapshot` mid-marker-sweep
/// (markers decided on a strict prefix of the shards) must cost
/// nothing: the store keeps serving, and every later snapshot is
/// complete and consistent — the abandoned epoch's unclaimed early
/// captures are inert.
#[test]
fn store_crash_mid_snapshot_is_harmless() {
    let _guard = failpoints::exclusive();
    failpoints::clear();

    let store = store4();
    let keys = keys_per_shard(&store);
    let mut h = store.handle();
    for (s, &k) in keys.iter().enumerate() {
        h.put(k, s as i64);
    }

    // Crash before the third marker: epoch 1 is marked on shards 0 and
    // 1, open forever on shards 2 and 3.
    failpoints::configure(
        "store::snapshot",
        FailpointConfig::once_for(FaultAction::Crash, 0, 3),
    );
    let group = {
        let store = store.clone();
        spawn_workers(1, move |_tid| {
            let mut hv = store.handle();
            let _ = hv.snapshot();
            unreachable!("the victim dies mid-snapshot");
        })
    };
    let outcomes = group.finish();
    match &outcomes[0] {
        Outcome::Crashed { site } => assert_eq!(site, "store::snapshot"),
        other => panic!("expected a planned crash, got {other:?}"),
    }
    failpoints::clear();

    // The store serves reads and writes on every shard (writes stamped
    // with the abandoned epoch trigger early captures on shards 2/3 —
    // bounded leftovers, nothing more).
    for &k in &keys {
        h.fetch_update(k, Bump(10));
    }
    // Later snapshots complete and are exact.
    let snap = h.snapshot();
    assert_eq!(snap.epoch, 2);
    for (s, &k) in keys.iter().enumerate() {
        assert_eq!(snap.map.get(&k), Some(&(s as i64 + 10)), "shard {s}");
    }
    let snap2 = h.snapshot();
    assert_eq!(snap2.epoch, 3);
    assert_eq!(snap2.map, snap.map);
}
