//! The ordering contract as a test-suite invariant: the machine-checked
//! pair graph over the workspace's `// ordering:` annotations must
//! resolve cleanly, every audited statement and loop must carry its
//! required annotation (zero exemptions), and the deliberately
//! mis-labeled `mutant-unpaired-acquire` pair must be caught by the
//! static pass.
//!
//! These tests run the same passes as `cargo run -p waitfree-analyze
//! --bin wf-lint`, so CI failures reproduce locally with one command.
//! The *dynamic* half of the cross-validation — observed
//! release→acquire edges judged against this contract under the
//! deterministic scheduler — lives in `tests/sched_linearizability.rs`.

mod common;

use waitfree_analyze::contract::extract_contract;
use waitfree_analyze::{lint_source, Rule};

/// The full static lint (per-file rules and the cross-file pair graph)
/// is clean over the shipped sources: every pre-existing ordering
/// comment resolved into the DSL, every non-test loop carries a
/// progress annotation, and no file is exempt.
#[test]
fn workspace_lint_is_clean_with_zero_exemptions() {
    let files = common::workspace_sources();
    assert!(files.len() > 50, "workspace walk found only {} files", files.len());

    let mut findings = Vec::new();
    for (rel, src) in &files {
        for f in lint_source(rel, src) {
            findings.push(format!("{rel}:{}: {f}", f.line));
        }
    }
    let result = extract_contract(&files, false);
    for f in &result.findings {
        findings.push(format!("{}:{}: {}", f.file, f.finding.line, f.finding));
    }
    assert!(
        findings.is_empty(),
        "{} lint finding(s):\n{}",
        findings.len(),
        findings.join("\n")
    );
}

/// The extracted pair graph has real substance: release sites in both
/// algorithm crates, every `pairs:` reference resolved, and the
/// specific labels the design names (DESIGN §15) all present.
#[test]
fn pair_graph_resolves_and_covers_both_algorithm_crates() {
    let files = common::workspace_sources();
    let result = extract_contract(&files, false);
    assert!(result.findings.is_empty(), "{:?}", result.findings);

    let c = &result.contract;
    assert!(
        c.files.iter().any(|f| f == "crates/sync/src/universal.rs")
            && c.files.iter().any(|f| f == "crates/sync/src/lockfree.rs")
            && c.files.iter().any(|f| f == "crates/store/src/lib.rs"),
        "contract coverage misses an algorithm file: {:?}",
        c.files
    );

    let labels: Vec<&str> =
        c.sites.iter().filter_map(|s| s.label.as_deref()).collect();
    for expected in [
        "universal.hint_pub",
        "universal.decide",
        "universal.cp_install",
        "universal.seg_install",
        "universal.seg_count",
        "universal.slots_hi",
        "universal.reg_install",
        "lockfree.stack_push",
        "lockfree.stack_pop",
        "lockfree.enq",
        "lockfree.deq",
        "lockfree.retire",
    ] {
        assert!(labels.contains(&expected), "missing release site `{expected}` in {labels:?}");
    }

    let pairs = c.declared_pairs();
    assert!(pairs.len() >= 40, "only {} declared pairs", pairs.len());
    // Every declared pair's release label resolves (re-stating what
    // `findings.is_empty()` above already guarantees, but as data: the
    // label set and the pair set agree).
    for (release, acquirer) in &pairs {
        assert!(
            labels.contains(&release.as_str()),
            "pair ({release} → {acquirer}) names an undeclared release site"
        );
    }
}

/// The static mutant gate: with `#[cfg(feature = "mutant-…")]`-gated
/// statements included, the deliberately mis-labeled acquire in
/// `universal::thread_entry` (`pairs: universal.hint_stale`) must
/// surface as an unresolved pair — and it must be the *only* new
/// finding, so the gate stays sharp. This is a source-level scan: it
/// proves the pass catches the dangling label without building the
/// mutant feature.
#[test]
fn mutant_unpaired_acquire_is_caught_statically() {
    let files = common::workspace_sources();
    let with_mutants = extract_contract(&files, true);
    let dangling: Vec<_> = with_mutants
        .findings
        .iter()
        .filter(|f| {
            f.finding.rule == Rule::UnresolvedPair
                && f.file == "crates/sync/src/universal.rs"
                && f.finding.msg.contains("universal.hint_stale")
        })
        .collect();
    assert_eq!(
        dangling.len(),
        1,
        "expected exactly the mutant's dangling pair, got {:?}",
        with_mutants.findings
    );
    assert_eq!(
        with_mutants.findings.len(),
        1,
        "mutant inclusion produced unrelated findings: {:?}",
        with_mutants.findings
    );
}

/// The advisory `SeqCst` report stays truthful: the two deliberately
/// kept `SeqCst` linearization sites (the universal construction's
/// decide CAS and the announce/done handshake's documented
/// counterparts) are marked documented, and the report never fails the
/// build (it is a worklist, not a gate).
#[test]
fn seqcst_report_documents_the_deliberate_sites() {
    let files = common::workspace_sources();
    let report = waitfree_analyze::contract::seqcst_report(&files);
    assert!(!report.is_empty());
    let documented: Vec<_> = report.iter().filter(|s| s.documented).collect();
    assert!(
        documented.iter().any(|s| {
            s.file == "crates/sync/src/universal.rs" && s.context.contains("compare_exchange")
        }),
        "the decide CAS must be a documented SeqCst site: {documented:?}"
    );
    assert!(
        documented.iter().any(|s| s.context.contains("done.fetch_max"))
            && documented.iter().any(|s| s.context.contains("announced.store")),
        "both halves of the announce/done handshake must be documented: {documented:?}"
    );
    // Undocumented sites are candidates, not errors — the report is
    // advisory by construction (wf-lint --seqcst-report always exits 0).
    assert!(report.iter().any(|s| !s.documented));
}
