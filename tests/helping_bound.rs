//! The O(n) helping bound of §4's universal construction, measured on
//! real threads: no operation's threading loop runs more than ~2n
//! consensus decides, because every log position periodically prefers
//! each thread's announced operation.
//!
//! The bound argument: when an operation is announced the log frontier
//! sits at some position F; within the next n positions one position's
//! preferred thread is the announcer, and whoever decides that position
//! proposes the announced entry. The announcer's own loop starts at most
//! n positions behind F (the shared hint lags each running thread by less
//! than n positions — the seed path republished it every iteration, the
//! pointer path every n-th iteration and once after the loop), so it
//! iterates at most ~2n times. We assert
//! `max_threading_steps <= 2n + 8`, slack for the startup positions.
//!
//! Every universal-object path is measured (see `common::CounterPath`):
//! neither the hoisted hint publication nor the batch-combining layer
//! may loosen the bound. Combining must also *tighten* the amortized
//! picture: one winning decide threads every pending announced op, so
//! under full contention total decides per completed op drop from ~1
//! toward 1/n — the `combining` module below asserts that drop against
//! the per-op path under an injected yield storm.

mod common;

use waitfree::sched::thread;

use common::{BatchedPath, CellPath, CheckpointedPath, CounterPath, PtrPath, CHECKPOINT_EVERY};
use waitfree::objects::counter::CounterOp;

fn contention_round<P: CounterPath>() {
    let n = 4;
    let per = 400;
    let handles = P::create(n, per);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..per {
                    h.invoke(CounterOp::Add(1));
                }
                (h.tid(), h.max_threading_steps())
            })
        })
        .collect();
    for j in joins {
        let (tid, max_steps) = j.join().unwrap();
        assert!(
            max_steps <= 2 * n + 8,
            "[{}] thread {tid}: {max_steps} threading steps exceeds the O(n) bound (n = {n})",
            P::NAME
        );
    }
}

#[test]
fn helping_bounds_threading_steps_under_contention() {
    contention_round::<PtrPath>();
    contention_round::<BatchedPath>();
    contention_round::<CellPath>();
}

/// The helping bound survives checkpointed truncation, with explicit
/// slack for the checkpoint positions themselves: a threading loop that
/// spans k positions may additionally cross every checkpoint decided in
/// that window (at most one per cadence, plus one race), and checkpoint
/// entries carry no one's op — they are pure extra iterations. The
/// bound stays O(n): the cadence contributes a constant factor
/// (1 + 1/every), not a new dependence on history length.
#[test]
fn helping_bound_survives_checkpointing_with_cadence_slack() {
    let n = 4;
    let per = 400;
    let base = 2 * n + 8;
    let bound = base + base / CHECKPOINT_EVERY + 2;
    let handles = CheckpointedPath::create(n, per);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..per {
                    h.invoke(CounterOp::Add(1));
                }
                (h.tid(), h.max_threading_steps())
            })
        })
        .collect();
    for j in joins {
        let (tid, max_steps) = j.join().unwrap();
        assert!(
            max_steps <= bound,
            "[checkpointed] thread {tid}: {max_steps} threading steps exceeds \
             the cadence-adjusted O(n) bound {bound} (n = {n})"
        );
    }
}

/// The bound restated for dynamic membership: the `n` in `2n + 8` is the
/// registry high-water — peak *active* handles — not total arrivals.
/// After 64 generations of sequential churn the registry still holds one
/// slot, so a 4-way contention round that follows must obey the bound
/// with `hi = 4`, as if the 64 departed clients never existed.
#[test]
fn helping_bound_is_over_active_handles_not_arrivals() {
    use waitfree::objects::counter::Counter;
    use waitfree::sync::universal::WfUniversal;

    let obj = WfUniversal::new_dynamic(Counter::new(0), 500);
    for _ in 0..64 {
        let mut h = obj.register();
        h.invoke(CounterOp::Add(1));
        h.retire();
    }
    assert_eq!(obj.registry_slots(), 1, "sequential churn reuses one slot");

    let n = 4;
    let per = 200;
    let joins: Vec<_> = (0..n)
        .map(|_| obj.register())
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..per {
                    h.invoke(CounterOp::Add(1));
                }
                (h.tid(), h.max_threading_steps())
            })
        })
        .collect();
    let hi = obj.registry_slots();
    assert_eq!(hi, n, "four concurrent registrants need four slots");
    for j in joins {
        let (tid, max_steps) = j.join().unwrap();
        assert!(
            max_steps <= 2 * hi + 8,
            "slot {tid}: {max_steps} threading steps exceeds the restated \
             O(active) bound (hi = {hi}, arrivals = {})",
            obj.total_arrivals()
        );
    }
}

/// The same bound with an adversarially stalled thread: helping means a
/// parked peer costs the survivors *nothing* in their own step count —
/// that is exactly what separates wait-free from lock-free.
#[cfg(feature = "failpoints")]
mod stall {
    use super::*;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;
    use waitfree::faults::failpoints::{self, FailpointConfig, FaultAction, Fire};
    use waitfree::faults::harness::spawn_workers;

    fn stall_round<P: CounterPath>() {
        failpoints::clear();

        const N: usize = 4;
        const PER: usize = 100;
        failpoints::configure(
            "universal::announced",
            FailpointConfig {
                action: FaultAction::Stall,
                fire: Fire::Nth(5),
                tid: Some(1),
                budget: Some(1),
            },
        );

        let handles: Arc<Vec<Mutex<Option<P>>>> = Arc::new(
            P::create(N, PER).into_iter().map(|h| Mutex::new(Some(h))).collect(),
        );
        let group = {
            let handles = Arc::clone(&handles);
            spawn_workers(N, move |tid| {
                let mut h = handles[tid].lock().unwrap().take().unwrap();
                for _ in 0..PER {
                    h.invoke(CounterOp::Add(1));
                }
                h.max_threading_steps()
            })
        };

        // Survivors finish with the victim still parked mid-operation.
        assert!(group.await_finished(N - 1, Duration::from_secs(60)), "[{}]", P::NAME);
        for (tid, outcome) in group.finish().into_iter().enumerate() {
            let max_steps = outcome.completed().expect("all threads complete after release");
            assert!(
                max_steps <= 2 * N + 8,
                "[{}] thread {tid}: {max_steps} threading steps exceeds the O(n) bound (n = {N})",
                P::NAME
            );
        }
        failpoints::clear();
    }

    #[test]
    fn helping_bound_survives_an_injected_stall() {
        let _guard = failpoints::exclusive();
        stall_round::<PtrPath>();
        stall_round::<BatchedPath>();
        stall_round::<CellPath>();
    }
}

/// The combining layer's amortized claim, measured: under full
/// contention (every thread parked mid-invoke by a yield storm right
/// after announcing, so pending backlogs always exist), batch decides
/// drop the total consensus-decide count per completed op from ~1
/// toward 1/n, while the per-op path pays at least one decided position
/// per op. The worst case stays within the same 2n + 8 bound as ever —
/// the combining scan starts at each position's preferred thread, so
/// per-position helping is a superset of the per-op discipline.
#[cfg(feature = "failpoints")]
mod combining {
    use std::sync::{Arc, Mutex};
    use std::time::Duration;
    use waitfree::faults::failpoints::{self, FailpointConfig, FaultAction, Fire};
    use waitfree::faults::harness::spawn_workers;
    use waitfree::objects::counter::{Counter, CounterOp};
    use waitfree::sync::universal::{WfHandle, WfUniversal};

    const N: usize = 4;
    const PER: usize = 200;

    /// Aggregated hot-path measurements of one storm round.
    struct StormStats {
        decides: usize,
        cas_failures: usize,
        invokes: usize,
        positions: usize,
        ops: usize,
        worst: usize,
    }

    /// Run `N × PER` fetch-and-adds under an every-announce yield storm
    /// (plus, when `race_cas`, a yield between candidate collection and
    /// the decide CAS, so lost decide races happen even on one core).
    fn yield_storm_round(handles: Vec<WfHandle<Counter>>, race_cas: bool) -> StormStats {
        failpoints::clear();
        // Parking each thread right after it announces maximizes the
        // window in which its op is pending: the scheduler runs someone
        // else, whose next decide sees a backlog.
        failpoints::configure(
            "universal::announced",
            FailpointConfig {
                action: FaultAction::Yield,
                fire: Fire::Always,
                tid: None,
                budget: None,
            },
        );
        if race_cas {
            failpoints::configure(
                "universal::cas",
                FailpointConfig {
                    action: FaultAction::Yield,
                    fire: Fire::Always,
                    tid: None,
                    budget: None,
                },
            );
        }

        let handles: Arc<Vec<Mutex<Option<WfHandle<Counter>>>>> =
            Arc::new(handles.into_iter().map(|h| Mutex::new(Some(h))).collect());
        let group = {
            let handles = Arc::clone(&handles);
            spawn_workers(N, move |tid| {
                let mut h = handles[tid].lock().unwrap().take().unwrap();
                for _ in 0..PER {
                    h.invoke(CounterOp::FetchAndAdd(1));
                }
                h
            })
        };
        assert!(group.await_finished(N, Duration::from_secs(120)), "storm round hung");
        let finished: Vec<WfHandle<Counter>> = group
            .finish()
            .into_iter()
            .map(|o| o.completed().expect("no faults injected beyond yields"))
            .collect();
        failpoints::clear();

        StormStats {
            decides: finished.iter().map(|h| h.decides()).sum(),
            cas_failures: finished.iter().map(|h| h.cas_failures()).sum(),
            invokes: finished.iter().map(|h| h.invokes()).sum(),
            positions: finished[0].decided_batches().len(),
            ops: finished[0].decided_log().len(),
            worst: finished.iter().map(|h| h.max_threading_steps()).max().unwrap(),
        }
    }

    #[test]
    fn combining_amortizes_decides_under_full_contention() {
        let _guard = failpoints::exclusive();

        let b = yield_storm_round(WfUniversal::new(Counter::new(0), N, PER), false);
        let p = yield_storm_round(WfUniversal::new_per_op(Counter::new(0), N, PER), false);

        assert_eq!(b.invokes, N * PER);
        assert_eq!(p.invokes, N * PER);

        // The measured numbers EXPERIMENTS.md quotes (run with
        // `--nocapture` to see them).
        let b_rate = b.decides as f64 / b.invokes as f64;
        let p_rate = p.decides as f64 / p.invokes as f64;
        println!(
            "storm n={N} per={PER}: batched decides/op {b_rate:.3} ({} positions, \
             {} CAS failures) vs per-op {p_rate:.3} ({} positions, {} CAS failures)",
            b.positions, b.cas_failures, p.positions, p.cas_failures,
        );

        // The worst case must not loosen: same O(n) bound either mode.
        assert!(b.worst <= 2 * N + 8, "batched worst case {} exceeds 2n+8", b.worst);
        assert!(p.worst <= 2 * N + 8, "per-op worst case {} exceeds 2n+8", p.worst);

        // Per-op: one decided position per completed op, at minimum
        // (duplicates from helping can only add positions).
        assert!(
            p.positions >= N * PER,
            "per-op consumed {} positions for {} ops",
            p.positions,
            N * PER
        );

        // Batched: combining genuinely happened — strictly fewer
        // positions than ops — and the amortized decide count per
        // completed op is O(1) with a constant under 1, not the per-op
        // path's ≥ 1. The storm keeps backlogs non-empty, so in
        // practice positions land well below half the op count; the
        // asserted bounds are loose enough to be scheduler-proof.
        assert!(
            b.positions < b.ops,
            "yield storm produced no multi-op batch ({} positions, {} ops)",
            b.positions,
            b.ops
        );
        assert!(
            b.positions < p.positions,
            "batched did not consume fewer positions ({} vs {})",
            b.positions,
            p.positions
        );
        assert!(
            b_rate < 1.0,
            "batched decides/invoke {b_rate:.3} not amortized below one decide per op"
        );
        assert!(
            b_rate < p_rate,
            "batched decides/invoke {b_rate:.3} not below per-op {p_rate:.3}"
        );
        // Fewer decides also means fewer lost races: combining must not
        // *increase* the CAS-failure count under the same storm.
        assert!(
            b.cas_failures <= p.cas_failures,
            "batched CAS failures {} exceed per-op {}",
            b.cas_failures,
            p.cas_failures
        );
    }

    /// The announce-only storm never loses a CAS on a single core (each
    /// decide runs to completion between yields), so this round also
    /// parks every thread *between* collecting its candidate and the
    /// decide CAS: whoever yields there can resume to find the position
    /// already taken. Lost decide races become observable, and
    /// combining — deciding once per batch instead of once per op —
    /// must lose no more of them than the per-op discipline under the
    /// identical storm.
    #[test]
    fn combining_loses_no_more_cas_races_under_a_decide_race_storm() {
        let _guard = failpoints::exclusive();

        let b = yield_storm_round(WfUniversal::new(Counter::new(0), N, PER), true);
        let p = yield_storm_round(WfUniversal::new_per_op(Counter::new(0), N, PER), true);

        assert_eq!(b.invokes, N * PER);
        assert_eq!(p.invokes, N * PER);
        println!(
            "race storm n={N} per={PER}: batched {} CAS failures over {} decides \
             ({} positions) vs per-op {} CAS failures over {} decides ({} positions)",
            b.cas_failures, b.decides, b.positions, p.cas_failures, p.decides, p.positions,
        );

        // The O(n) bound holds with adversarial yields at both sites.
        assert!(b.worst <= 2 * N + 8, "batched worst case {} exceeds 2n+8", b.worst);
        assert!(p.worst <= 2 * N + 8, "per-op worst case {} exceeds 2n+8", p.worst);

        // Combining still collapses positions under this storm too.
        assert!(
            b.positions < p.positions,
            "batched did not consume fewer positions ({} vs {})",
            b.positions,
            p.positions
        );
        assert!(
            b.cas_failures <= p.cas_failures,
            "batched lost more CAS races than per-op ({} vs {})",
            b.cas_failures,
            p.cas_failures
        );
    }
}
