//! The O(n) helping bound of §4's universal construction, measured on
//! real threads: no operation's threading loop runs more than ~2n
//! consensus decides, because every log position periodically prefers
//! each thread's announced operation.
//!
//! The bound argument: when an operation is announced the log frontier
//! sits at some position F; within the next n positions one position's
//! preferred thread is the announcer, and whoever decides that position
//! proposes the announced entry. The announcer's own loop starts at most
//! n positions behind F (the shared hint lags each running thread by less
//! than n positions — the seed path republished it every iteration, the
//! pointer path every n-th iteration and once after the loop), so it
//! iterates at most ~2n times. We assert
//! `max_threading_steps <= 2n + 8`, slack for the startup positions.
//!
//! Both universal-object paths are measured (see `common::CounterPath`):
//! the hoisted hint publication on the optimised path must not loosen
//! the bound.

mod common;

use std::thread;

use common::{CellPath, CounterPath, PtrPath};
use waitfree::objects::counter::CounterOp;

fn contention_round<P: CounterPath>() {
    let n = 4;
    let per = 400;
    let handles = P::create(n, per);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..per {
                    h.invoke(CounterOp::Add(1));
                }
                (h.tid(), h.max_threading_steps())
            })
        })
        .collect();
    for j in joins {
        let (tid, max_steps) = j.join().unwrap();
        assert!(
            max_steps <= 2 * n + 8,
            "[{}] thread {tid}: {max_steps} threading steps exceeds the O(n) bound (n = {n})",
            P::NAME
        );
    }
}

#[test]
fn helping_bounds_threading_steps_under_contention() {
    contention_round::<PtrPath>();
    contention_round::<CellPath>();
}

/// The same bound with an adversarially stalled thread: helping means a
/// parked peer costs the survivors *nothing* in their own step count —
/// that is exactly what separates wait-free from lock-free.
#[cfg(feature = "failpoints")]
mod stall {
    use super::*;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;
    use waitfree::faults::failpoints::{self, FailpointConfig, FaultAction, Fire};
    use waitfree::faults::harness::spawn_workers;

    fn stall_round<P: CounterPath>() {
        failpoints::clear();

        const N: usize = 4;
        const PER: usize = 100;
        failpoints::configure(
            "universal::announced",
            FailpointConfig {
                action: FaultAction::Stall,
                fire: Fire::Nth(5),
                tid: Some(1),
                budget: Some(1),
            },
        );

        let handles: Arc<Vec<Mutex<Option<P>>>> = Arc::new(
            P::create(N, PER).into_iter().map(|h| Mutex::new(Some(h))).collect(),
        );
        let group = {
            let handles = Arc::clone(&handles);
            spawn_workers(N, move |tid| {
                let mut h = handles[tid].lock().unwrap().take().unwrap();
                for _ in 0..PER {
                    h.invoke(CounterOp::Add(1));
                }
                h.max_threading_steps()
            })
        };

        // Survivors finish with the victim still parked mid-operation.
        assert!(group.await_finished(N - 1, Duration::from_secs(60)), "[{}]", P::NAME);
        for (tid, outcome) in group.finish().into_iter().enumerate() {
            let max_steps = outcome.completed().expect("all threads complete after release");
            assert!(
                max_steps <= 2 * N + 8,
                "[{}] thread {tid}: {max_steps} threading steps exceeds the O(n) bound (n = {N})",
                P::NAME
            );
        }
        failpoints::clear();
    }

    #[test]
    fn helping_bound_survives_an_injected_stall() {
        let _guard = failpoints::exclusive();
        stall_round::<PtrPath>();
        stall_round::<CellPath>();
    }
}
