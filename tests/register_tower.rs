//! Integration: the register tower — from safe bits to atomic snapshots —
//! verified with the generic linearizability checker and the
//! safe/regular/atomic semantics.

use waitfree::explorer::impl_sim::{all_histories, run_random};
use waitfree::model::{linearize, PendingPolicy};
use waitfree::objects::register::RegOp;
use waitfree::registers::constructions::{MrswToMrmw, SafeToRegular, SrswToMrsw, UnaryMultivalued};
use waitfree::registers::semantics::{is_atomic, is_regular, is_safe};
use waitfree::registers::snapshot::{SnapOp, SnapSpec, SnapshotFrontEnd};

#[test]
fn tower_level_1_safe_to_regular() {
    let (fe, bank) = SafeToRegular::setup(0);
    let workloads = vec![
        vec![RegOp::Write(1), RegOp::Write(0), RegOp::Write(0)],
        vec![RegOp::Read, RegOp::Read],
    ];
    let histories = all_histories(&fe, &bank, &workloads, 300_000);
    assert!(!histories.is_empty());
    for h in &histories {
        assert!(is_regular(h, 0), "{h:?}");
        assert!(is_safe(h, 0, 2), "regular ⊂ safe: {h:?}");
    }
}

#[test]
fn tower_level_2_multivalued() {
    let (fe, bank) = UnaryMultivalued::setup(4, 1);
    let workloads = vec![vec![RegOp::Write(3), RegOp::Write(2)], vec![RegOp::Read]];
    let histories = all_histories(&fe, &bank, &workloads, 300_000);
    for h in &histories {
        assert!(is_regular(h, 1), "{h:?}");
    }
}

#[test]
fn tower_level_3_multi_reader_atomicity() {
    let (fe, bank) = SrswToMrsw::setup(2, 0);
    let workloads = vec![
        vec![RegOp::Write(1), RegOp::Write(2)],
        vec![RegOp::Read, RegOp::Read],
        vec![RegOp::Read],
    ];
    for seed in 0..60 {
        let run = run_random(&fe, bank.clone(), &workloads, seed, 200);
        assert!(is_atomic(&run.history, 0), "seed {seed}: {:?}", run.history);
    }
}

#[test]
fn tower_level_4_multi_writer_atomicity() {
    let (fe, bank) = MrswToMrmw::setup(3, 0);
    let workloads = vec![
        vec![RegOp::Write(1), RegOp::Read],
        vec![RegOp::Write(2), RegOp::Read],
        vec![RegOp::Read, RegOp::Write(3)],
    ];
    for seed in 0..60 {
        let run = run_random(&fe, bank.clone(), &workloads, seed, 200);
        assert!(is_atomic(&run.history, 0), "seed {seed}: {:?}", run.history);
    }
}

#[test]
fn tower_top_snapshot_linearizes() {
    let (fe, bank) = SnapshotFrontEnd::setup(3, 0);
    let workloads = vec![
        vec![SnapOp::Update(1), SnapOp::Scan],
        vec![SnapOp::Update(2), SnapOp::Scan],
        vec![SnapOp::Scan, SnapOp::Update(3)],
    ];
    for seed in 0..60 {
        let run = run_random(&fe, bank.clone(), &workloads, seed, 300);
        let report = linearize(&run.history, &SnapSpec::new(3, 0), PendingPolicy::MayTakeEffect);
        assert!(report.outcome.is_ok(), "seed {seed}: {:?}", run.history);
    }
}

#[test]
fn the_tower_stops_below_consensus() {
    // The point of the whole paper: the tower of register constructions
    // climbs to snapshots, but *no* register construction reaches
    // 2-process consensus (Theorem 2 / thm_02_registers). Here: the
    // snapshot object, despite its power, still has consensus number 1 —
    // two processes racing updates then scanning cannot break symmetry.
    // (The scan views are symmetric: both may see both updates.)
    use waitfree::model::ObjectSpec;
    use waitfree::model::Pid;
    let mut spec = SnapSpec::new(2, -1);
    // Both update, then both scan: identical views regardless of order.
    spec.apply(Pid(0), &SnapOp::Update(0));
    spec.apply(Pid(1), &SnapOp::Update(1));
    let v0 = spec.apply(Pid(0), &SnapOp::Scan);
    let v1 = spec.apply(Pid(1), &SnapOp::Scan);
    assert_eq!(v0, v1, "views cannot identify who came first");
}
