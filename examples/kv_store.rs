//! Sharded wait-free KV store tour: single-key traffic, cross-shard
//! multi-key atomics, and consistent global snapshots under load.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```
//!
//! On display:
//!
//! 1. A 4-shard [`ShardedStore`] — each shard an independent universal
//!    consensus log, keys routed by a seeded stable hash.
//! 2. Concurrent single-key `put`/`cas`/`fetch_update` from several
//!    threads, each touching exactly one shard log per op.
//! 3. `multi_cas` transfers between keys on *different* shards —
//!    all-or-nothing under concurrency.
//! 4. `snapshot()` while writers keep writing: every snapshot balances
//!    exactly (the transfer invariant is conserved in every cut) and
//!    epochs strictly increase.
//!
//! [`ShardedStore`]: waitfree::store::ShardedStore

use std::sync::Arc;

use waitfree::sched::atomic::{AtomicBool, Ordering};
use waitfree::sched::thread;

use waitfree::store::{Bump, ShardedStore, StoreConfig};

const ACCOUNTS: u64 = 16;
const OPENING: i64 = 1000;
const TRANSFERS_PER_THREAD: usize = 200;
const TELLERS: usize = 3;

fn main() {
    let cfg = StoreConfig { shards: 4, checkpoint_every: Some(256), ..StoreConfig::default() };
    let store: ShardedStore<u64, i64, Bump> = ShardedStore::new(&cfg);
    println!("store: {} shards, seed {:#x}", store.shards(), store.seed());

    // Open the accounts in one atomic multi-key write spanning all shards.
    let mut h = store.handle();
    h.multi_put((0..ACCOUNTS).map(|a| (a, Some(OPENING))));
    let total = OPENING * ACCOUNTS as i64;
    println!("opened {ACCOUNTS} accounts with {OPENING} each (total {total})");

    // Tellers transfer between random cross-shard account pairs with
    // multi_cas; an auditor snapshots concurrently and checks that the
    // total is conserved in every cut.
    let stop = Arc::new(AtomicBool::new(false));
    let mut tellers = Vec::new();
    for t in 0..TELLERS {
        let store = store.clone();
        tellers.push(thread::spawn(move || {
            let mut h = store.handle();
            let mut rng = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
            let mut committed = 0usize;
            for _ in 0..TRANSFERS_PER_THREAD {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let from = (rng >> 33) % ACCOUNTS;
                let to = (rng >> 13) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let amount = 1 + (rng % 50) as i64;
                // Read both balances, then commit the transfer only if
                // neither moved — an optimistic cross-shard transaction.
                let a = h.get(&from).expect("account exists");
                let b = h.get(&to).expect("account exists");
                if a >= amount
                    && h.multi_cas(
                        [(from, Some(a)), (to, Some(b))],
                        [(from, Some(a - amount)), (to, Some(b + amount))],
                    )
                {
                    committed += 1;
                }
            }
            h.retire();
            committed
        }));
    }

    let auditor = {
        let store = store.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut h = store.handle();
            let mut snaps = 0usize;
            let mut last_epoch = 0;
            while !stop.load(Ordering::SeqCst) {
                let snap = h.snapshot();
                assert!(snap.epoch > last_epoch, "epochs strictly increase");
                last_epoch = snap.epoch;
                let sum: i64 = snap.map.values().sum();
                assert_eq!(sum, total, "snapshot {} lost money: {sum} != {total}", snap.epoch);
                snaps += 1;
            }
            h.retire();
            snaps
        })
    };

    let committed: usize = tellers.into_iter().map(|t| t.join().unwrap()).sum();
    stop.store(true, Ordering::SeqCst);
    let snaps = auditor.join().unwrap();
    println!("tellers committed {committed} cross-shard transfers");
    println!("auditor took {snaps} consistent snapshots under load — all balanced");

    // Final audit from a fresh handle, plus a per-account bonus via
    // fetch_update (one wait-free decide on one shard each).
    let mut h = store.handle();
    for a in 0..ACCOUNTS {
        h.fetch_update(a, Bump(1));
    }
    let snap = h.snapshot();
    let sum: i64 = snap.map.values().sum();
    assert_eq!(sum, total + ACCOUNTS as i64);
    println!(
        "final snapshot (epoch {}): {} accounts, total {sum}; marker positions {:?}",
        snap.epoch,
        snap.map.len(),
        snap.marker_positions
    );
    for s in 0..store.shards() {
        println!(
            "shard {s}: {} checkpoints, {} segments reclaimed",
            store.shard(s).checkpoints(),
            store.shard(s).reclaimed_segments()
        );
    }
    h.retire();
}
