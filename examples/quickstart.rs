//! Quickstart: wait-free shared objects in three steps.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. Wrap any sequential object (here a counter and a FIFO queue) in the
//!    universal construction — Herlihy's §4 result says one consensus
//!    primitive is enough for *any* of them.
//! 2. Hand one handle to each thread.
//! 3. Operations are wait-free: bounded steps regardless of what other
//!    threads do.

use waitfree::sync::wrappers::{WfCounterHandle, WfQueueHandle};

fn main() {
    // A wait-free counter shared by 4 threads.
    let threads = 4;
    let per = 10_000;
    let handles = WfCounterHandle::create(threads, per + 1);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            waitfree::sched::thread::spawn(move || {
                let mut first_ticket = None;
                for _ in 0..per {
                    let old = h.fetch_add(1);
                    first_ticket.get_or_insert(old);
                }
                first_ticket.expect("took at least one ticket")
            })
        })
        .collect();
    let first_tickets: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    println!("wait-free counter: {threads} threads × {per} increments");
    println!("  first ticket per thread: {first_tickets:?}");
    println!("  (each fetch_add returned a unique ticket — linearizable)");

    // A wait-free FIFO queue: producer and consumer, no locks anywhere.
    let handles = WfQueueHandle::create(2, 12);
    let mut it = handles.into_iter();
    let mut producer = it.next().expect("two handles");
    let mut consumer = it.next().expect("two handles");
    let p = waitfree::sched::thread::spawn(move || {
        for item in [10, 20, 30, 40, 50] {
            producer.enq(item);
        }
    });
    p.join().expect("producer finished");
    let mut drained = Vec::new();
    while let Some(v) = consumer.deq() {
        drained.push(v);
    }
    println!("wait-free queue drained in FIFO order: {drained:?}");
    assert_eq!(drained, vec![10, 20, 30, 40, 50]);
    println!("ok");
}
