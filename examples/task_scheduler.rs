//! A wait-free work scheduler: the motivating scenario from the paper's
//! introduction ("if a process executing in a critical region takes a
//! page fault … other processes needing that resource will also be
//! delayed").
//!
//! ```text
//! cargo run --example task_scheduler
//! ```
//!
//! A pool of workers pulls tasks from a shared wait-free queue and pushes
//! results to a wait-free counter. One worker is deliberately *slow*
//! (simulating preemption/page faults mid-operation); with a lock it
//! would stall the whole pool — here the others are provably unaffected:
//! their step counts are bounded independent of the slow worker.

use std::time::{Duration, Instant};

use waitfree::sync::wrappers::{WfCounterHandle, WfQueueHandle};

fn main() {
    let workers = 4;
    let tasks: i64 = 400;

    // Queue handles: one per worker plus one for the coordinator.
    let mut q_handles = WfQueueHandle::create(workers + 1, 2 * tasks as usize + 8);
    let mut coordinator_q = q_handles.remove(0);
    let mut c_handles = WfCounterHandle::create(workers + 1, 2 * tasks as usize + 8);
    let mut coordinator_c = c_handles.remove(0);

    // Seed the task pool: task i = "compute i² and add it to the tally".
    for i in 0..tasks {
        coordinator_q.enq(i);
    }

    let start = Instant::now();
    let joins: Vec<_> = q_handles
        .into_iter()
        .zip(c_handles)
        .enumerate()
        .map(|(w, (mut q, mut c))| {
            waitfree::sched::thread::spawn(move || {
                let slow = w == 0; // worker 0 keeps getting "preempted"
                let mut processed = 0u32;
                while let Some(task) = q.deq() {
                    if slow {
                        waitfree::sched::thread::sleep(Duration::from_micros(300));
                    }
                    c.fetch_add(task * task);
                    processed += 1;
                }
                processed
            })
        })
        .collect();

    let processed: Vec<u32> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let elapsed = start.elapsed();

    let expected: i64 = (0..tasks).map(|i| i * i).sum();
    let tally = coordinator_c.get();
    println!("task scheduler: {tasks} tasks across {workers} workers ({:?})", elapsed);
    println!("  per-worker tasks processed: {processed:?} (worker 0 is the slow one)");
    println!("  Σ i² tally = {tally} (expected {expected})");
    assert_eq!(tally, expected, "every task executed exactly once");
    assert!(
        processed[1..].iter().sum::<u32>() > processed[0],
        "fast workers were not blocked behind the slow one"
    );
    println!("  the slow worker slowed only itself — wait-freedom at work");
}
