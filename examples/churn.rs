//! Dynamic membership under churn: clients arrive, operate, retire, and
//! sometimes die — the universal object keeps serving whoever is left.
//!
//! ```text
//! cargo run --example churn
//! ```
//!
//! The paper fixes the set of n processes for life; `new_dynamic` lifts
//! that restriction (DESIGN.md §11). Three things are on display:
//!
//! 1. **Arrival is wait-free.** `register()` claims a registry slot in a
//!    bounded number of the caller's own steps — no coordination with
//!    the clients already running.
//! 2. **Memory tracks concurrency, not history.** Wave after wave of
//!    short-lived clients reuse the same few slots: the registry's
//!    high-water mark stays near the *peak concurrently active* count
//!    while total arrivals keep growing.
//! 3. **A dead client costs one slot, nothing more.** A handle dropped
//!    without `retire()` (our stand-in for a crashed client) leaves one
//!    claimed slot behind; every other client — past, present, and
//!    future — proceeds at full speed and the counter stays exact.

use waitfree::objects::counter::{Counter, CounterOp, CounterResp};
use waitfree::sched::thread;
use waitfree::sync::universal::WfUniversal;

fn main() {
    const WAVES: usize = 10;
    const CLIENTS_PER_WAVE: usize = 4;
    const OPS_PER_CLIENT: i64 = 25;

    // Second arg is the per-registration op budget (the survivor below
    // does OPS_PER_CLIENT adds plus one Get on a single handle).
    let obj = WfUniversal::new_dynamic(Counter::new(0), OPS_PER_CLIENT as usize + 1);

    // Wave after wave of short-lived clients: each registers, does its
    // work, and retires. Arrivals accumulate; the registry must not.
    for wave in 0..WAVES {
        let joins: Vec<_> = (0..CLIENTS_PER_WAVE)
            .map(|_| {
                let obj = obj.clone();
                thread::spawn(move || {
                    let mut h = obj.register();
                    for _ in 0..OPS_PER_CLIENT {
                        h.invoke(CounterOp::Add(1));
                    }
                    h.retire();
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        println!(
            "wave {:2}: {:3} arrivals so far, registry holds {} slots (peak active {})",
            wave + 1,
            obj.total_arrivals(),
            obj.registry_slots(),
            obj.peak_active()
        );
    }

    let expected = (WAVES * CLIENTS_PER_WAVE) as i64 * OPS_PER_CLIENT;
    assert!(
        obj.registry_slots() <= 2 * CLIENTS_PER_WAVE,
        "registry grew with arrivals, not concurrency"
    );

    // One client "crashes": it registers, adds once, and vanishes
    // without retiring. The paper's fault model is exactly this — a
    // process that simply stops taking steps.
    let mut doomed = obj.register();
    doomed.invoke(CounterOp::Add(1));
    drop(doomed); // no retire(): the slot stays claimed
    println!(
        "a client died mid-session: {} active handle(s) linger, object unharmed",
        obj.active_handles()
    );

    // Life goes on for everyone else.
    let mut survivor = obj.register();
    for _ in 0..OPS_PER_CLIENT {
        survivor.invoke(CounterOp::Add(1));
    }
    let total = match survivor.invoke(CounterOp::Get) {
        CounterResp::Value(v) => v,
        other => panic!("unexpected response {other:?}"),
    };
    survivor.retire();

    assert_eq!(total, expected + 1 + OPS_PER_CLIENT, "an add was lost");
    println!(
        "final count {total}: every add from {} arrivals (one of them dead) accounted for",
        obj.total_arrivals()
    );
}
