//! Print Figure 1-1 — the consensus hierarchy — re-validating each row's
//! protocol mechanically as it goes.
//!
//! ```text
//! cargo run --release --example hierarchy_report
//! ```

use waitfree::core::hierarchy::{table, validate_row, Level};

fn main() {
    println!("Impossibility and Universality Hierarchy (Figure 1-1)");
    println!("{:-<78}", "");
    println!(
        "{:<28} {:>10}   {:<12} cannot do (certificate)",
        "object", "level", "verified"
    );
    println!("{:-<78}", "");

    for row in table() {
        let mut verified = Vec::new();
        for n in 1..=3 {
            match validate_row(&row, n) {
                Some(true) => verified.push(format!("n={n}")),
                Some(false) => verified.push(format!("n={n}: FAILED")),
                None => {}
            }
        }
        let impossibility = match row.level {
            Level::Infinite => "— (universal)".to_string(),
            _ => row.impossibility.split(':').next().unwrap_or("").to_string(),
        };
        println!(
            "{:<28} {:>10}   {:<12} {}",
            row.object,
            row.level.to_string(),
            verified.join(" "),
            impossibility,
        );
    }
    println!("{:-<78}", "");
    println!("every \"verified\" cell is an exhaustive model-checking run over all schedules,");
    println!("including adversarial crashes; see `waitfree-bench` for the impossibility side.");
}
