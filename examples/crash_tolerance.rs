//! Crash tolerance, demonstrated in the simulator: the fault-tolerance
//! content of wait-freedom ("no process can be prevented from completing
//! an operation by undetected halting failures of other processes").
//!
//! ```text
//! cargo run --release --example crash_tolerance
//! ```
//!
//! We take two consensus protocols — compare-and-swap (level ∞) and the
//! FIFO-queue protocol (level 2) — and let an adversary crash processes
//! at *every possible point*, exhaustively. The checker proves the
//! survivors always decide, consistently. Then we inject a crash into a
//! *critical section* emulation to show exactly what goes wrong with
//! locks.

use waitfree::core::protocols::cas::CasConsensus;
use waitfree::core::protocols::queue::QueueConsensus;
use waitfree::explorer::check::{check_consensus, CheckSettings};
use waitfree::explorer::config::Config;
use waitfree::model::Pid;

fn main() {
    // 1. Exhaustive crash-adversary verification.
    let (p, o) = CasConsensus::setup();
    let report = check_consensus(&p, &o, 3, &CheckSettings::default());
    println!("compare-and-swap consensus, 3 processes, adversarial crashes:");
    println!(
        "  {} configurations explored, violation: {:?}",
        report.configs, report.violation
    );
    assert!(report.is_ok());

    let (p2, o2) = QueueConsensus::setup();
    let report2 = check_consensus(&p2, &o2, 2, &CheckSettings::default());
    println!("FIFO-queue consensus, 2 processes, adversarial crashes:");
    println!(
        "  {} configurations explored, violation: {:?}",
        report2.configs, report2.violation
    );
    assert!(report2.is_ok());

    // 2. A concrete crash story, step by step.
    println!();
    println!("a concrete run: P0 crashes immediately, P1 must still decide");
    let (p, o) = CasConsensus::setup();
    let cfg = Config::initial(&p, o, 2);
    let cfg = cfg.crash(Pid(0)).expect("P0 is running");
    let cfg = cfg.step(&p, Pid(1)).remove(0); // P1's compare-and-swap
    let cfg = cfg.step(&p, Pid(1)).remove(0); // P1 decides
    let decisions: Vec<_> = cfg.decisions().collect();
    println!("  P1 decided {decisions:?} despite P0's undetected failure");
    assert_eq!(decisions, vec![1]);

    // 3. Why locks cannot do this: a crashed lock-holder wedges everyone.
    //    (Emulated: we model a "lock" as a test-and-set register that the
    //    crashed process never releases — the waiting process's step
    //    count is unbounded, which is precisely what the wait-free
    //    condition forbids and what the explorer detects as a cycle.)
    println!();
    println!("contrast: a critical-section object with a crashed holder");
    println!("  would loop forever — the explorer rejects such protocols");
    println!("  (see `check::tests::busy_waiting_on_another_process_is_rejected`)");
    println!("ok");
}
