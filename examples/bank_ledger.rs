//! A custom linearizable object from scratch: a bank ledger with atomic
//! transfers and audits.
//!
//! ```text
//! cargo run --example bank_ledger
//! ```
//!
//! This is the universality result used the way a downstream application
//! would: define the *sequential* semantics once (an `ObjectSpec`), get a
//! wait-free concurrent version for free. The `Audit` operation returns
//! the total across all accounts atomically — an operation that is
//! notoriously racy with per-account locks, and trivially correct here
//! because every operation is one log entry.

use waitfree::model::{ObjectSpec, Pid, Val};
use waitfree::sync::universal::WfUniversal;

/// Sequential specification of the ledger.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Ledger {
    accounts: Vec<Val>,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum LedgerOp {
    /// Move `amount` from one account to another; fails (atomically,
    /// with no effect) on insufficient funds.
    Transfer { from: usize, to: usize, amount: Val },
    /// Read one balance.
    Balance(usize),
    /// Atomically sum every account.
    Audit,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum LedgerResp {
    Ok,
    InsufficientFunds,
    Amount(Val),
}

impl ObjectSpec for Ledger {
    type Op = LedgerOp;
    type Resp = LedgerResp;

    fn apply(&mut self, _pid: Pid, op: &LedgerOp) -> LedgerResp {
        match *op {
            LedgerOp::Transfer { from, to, amount } => {
                if self.accounts[from] < amount {
                    LedgerResp::InsufficientFunds
                } else {
                    self.accounts[from] -= amount;
                    self.accounts[to] += amount;
                    LedgerResp::Ok
                }
            }
            LedgerOp::Balance(i) => LedgerResp::Amount(self.accounts[i]),
            LedgerOp::Audit => LedgerResp::Amount(self.accounts.iter().sum()),
        }
    }
}

fn main() {
    let accounts = 8;
    let initial_each: Val = 1_000;
    let threads = 4;
    let transfers_per_thread = 5_000;

    let ledger = Ledger {
        accounts: vec![initial_each; accounts],
    };
    let expected_total = initial_each * accounts as Val;

    let handles = WfUniversal::new(ledger, threads, transfers_per_thread + 64);
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            waitfree::sched::thread::spawn(move || {
                // A deterministic pseudo-random walk of transfers, plus
                // periodic audits *while transfers are in flight*.
                let mut x: u64 = 0x9E37_79B9 ^ (h.tid() as u64);
                let mut rejected = 0u32;
                let mut audits_ok = 0u32;
                for i in 0..transfers_per_thread {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let from = (x >> 13) as usize % 8;
                    let to = (x >> 29) as usize % 8;
                    let amount = (x >> 47) as Val % 200;
                    match h.invoke(LedgerOp::Transfer { from, to, amount }) {
                        LedgerResp::InsufficientFunds => rejected += 1,
                        LedgerResp::Ok => {}
                        LedgerResp::Amount(_) => unreachable!(),
                    }
                    if i % 500 == 0 {
                        match h.invoke(LedgerOp::Audit) {
                            LedgerResp::Amount(total) => {
                                assert_eq!(total, 8_000, "money conserved mid-flight");
                                audits_ok += 1;
                            }
                            other => unreachable!("{other:?}"),
                        }
                        // Spot-check a single balance too: it must never
                        // be negative (transfers are all-or-nothing).
                        match h.invoke(LedgerOp::Balance(from)) {
                            LedgerResp::Amount(b) => assert!(b >= 0, "no overdrafts"),
                            other => unreachable!("{other:?}"),
                        }
                    }
                }
                (rejected, audits_ok)
            })
        })
        .collect();

    let mut total_rejected = 0;
    let mut total_audits = 0;
    for j in joins {
        let (r, a) = j.join().expect("worker finished");
        total_rejected += r;
        total_audits += a;
    }

    println!("bank ledger: {threads} threads × {transfers_per_thread} transfers");
    println!("  insufficient-funds rejections: {total_rejected}");
    println!("  concurrent audits, all seeing exactly {expected_total}: {total_audits}");
    println!("  money was conserved at every linearization point — ok");
}
